// Micro-benchmarks (google-benchmark) for the embedded graph store, the
// traversal engine, the Cypher layer and the controllability analysis —
// the infrastructure costs behind the Table VIII build times and the
// Table X search times.
#include <benchmark/benchmark.h>

#include "corpus/components.hpp"
#include "corpus/noise.hpp"
#include "cpg/builder.hpp"
#include "cypher/cypher.hpp"
#include "finder/finder.hpp"
#include "graph/frozen.hpp"
#include "graph/serialize.hpp"
#include "util/rng.hpp"

using namespace tabby;

namespace {

graph::GraphDb random_graph(std::size_t nodes, std::size_t edges, bool with_index) {
  graph::GraphDb db;
  util::Rng rng(99);
  for (std::size_t i = 0; i < nodes; ++i) {
    db.add_node("Method",
                {{"NAME", graph::Value{std::string("m") + std::to_string(i % 64)}},
                 {"ID", graph::Value{static_cast<std::int64_t>(i)}}});
  }
  for (std::size_t i = 0; i < edges; ++i) {
    db.add_edge(rng.next_below(nodes), rng.next_below(nodes), "CALL");
  }
  if (with_index) db.create_index("Method", "NAME");
  return db;
}

void BM_NodeInsert(benchmark::State& state) {
  for (auto _ : state) {
    graph::GraphDb db;
    for (int i = 0; i < state.range(0); ++i) {
      db.add_node("Method", {{"NAME", graph::Value{std::string("m")}}});
    }
    benchmark::DoNotOptimize(db.node_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NodeInsert)->Arg(1000)->Arg(10000);

void BM_EdgeInsert(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    graph::GraphDb db;
    for (int i = 0; i < 1000; ++i) db.add_node("N");
    util::Rng rng(7);
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i) {
      db.add_edge(rng.next_below(1000), rng.next_below(1000), "CALL");
    }
    benchmark::DoNotOptimize(db.edge_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EdgeInsert)->Arg(10000);

void BM_IndexedLookup(benchmark::State& state) {
  graph::GraphDb db = random_graph(20000, 0, true);
  for (auto _ : state) {
    auto hits = db.find_nodes("Method", "NAME", graph::Value{std::string("m17")});
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_IndexedLookup);

void BM_LabelScanLookup(benchmark::State& state) {
  graph::GraphDb db = random_graph(20000, 0, false);
  for (auto _ : state) {
    auto hits = db.find_nodes("Method", "NAME", graph::Value{std::string("m17")});
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_LabelScanLookup);

void BM_TraversalDepth4(benchmark::State& state) {
  graph::GraphDb db = random_graph(2000, 8000, false);
  auto expand = [](const graph::GraphDb& g, const graph::Path& path, const int& s) {
    std::vector<graph::Step<int>> steps;
    for (graph::EdgeId e : g.out_edges(path.end())) {
      steps.push_back(graph::Step<int>{e, g.edge(e).to, s});
    }
    return steps;
  };
  auto evaluate = [](const graph::GraphDb&, const graph::Path& path, const int&) {
    return path.length() >= 4 ? graph::Evaluation::ExcludeAndPrune
                              : graph::Evaluation::ExcludeAndContinue;
  };
  for (auto _ : state) {
    graph::TraversalLimits limits;
    limits.max_expansions = 200000;
    graph::Traverser<int> t(db, expand, evaluate, graph::Uniqueness::NodePath, limits);
    auto results = t.run(0, 0);
    benchmark::DoNotOptimize(results);
  }
}
BENCHMARK(BM_TraversalDepth4);

void BM_SerializeRoundTrip(benchmark::State& state) {
  graph::GraphDb db = random_graph(5000, 20000, false);
  for (auto _ : state) {
    auto bytes = graph::serialize(db);
    auto loaded = graph::deserialize(bytes);
    benchmark::DoNotOptimize(loaded.ok());
  }
}
BENCHMARK(BM_SerializeRoundTrip);

void BM_CypherVarLengthQuery(benchmark::State& state) {
  corpus::Component component = corpus::build_component("commons-collections(3.2.1)");
  cpg::Cpg cpg = cpg::build_cpg(component.link());
  for (auto _ : state) {
    auto result = cypher::run_query(
        cpg.db,
        "MATCH (m:Method {IS_SOURCE: true})-[:CALL*1..6]->(s:Method {IS_SINK: true}) "
        "RETURN m.SIGNATURE LIMIT 50");
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_CypherVarLengthQuery);

void BM_CpgBuild(benchmark::State& state) {
  jar::Archive noise = corpus::make_noise_archive("bench.jar", "bench.pkg",
                                                  static_cast<int>(state.range(0)), 5);
  jir::Program program = jar::link({noise});
  for (auto _ : state) {
    cpg::Cpg cpg = cpg::build_cpg(program);
    benchmark::DoNotOptimize(cpg.stats.relationship_edges);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CpgBuild)->Arg(100)->Arg(500);

void BM_GadgetChainSearch(benchmark::State& state) {
  corpus::Component component = corpus::build_component("commons-collections(3.2.1)");
  cpg::Cpg cpg = cpg::build_cpg(component.link());
  for (auto _ : state) {
    finder::GadgetChainFinder finder(cpg.db);
    finder::FinderReport report = finder.find_all();
    benchmark::DoNotOptimize(report.chains.size());
  }
}
BENCHMARK(BM_GadgetChainSearch);

// --- Frozen CSR vs mutable store (docs/GRAPH.md) ---------------------------
//
// The finder's hot loop is "typed in-edges of the frontier node plus a
// property read per step" — hash-map property lookups and a string compare
// per edge on the store, contiguous typed segments and columnar reads on the
// frozen snapshot. These pairs measure the identical access pattern over
// both representations. Acceptance bars: the frozen typed traversal sustains
// >= 1.5x the store's items/s, and attaching a frozen frame (the warm-start
// path) costs a small fraction of graph::deserialize.

/// A CALL/ALIAS-typed graph with the finder's property shape: PP int-lists
/// on CALL edges, IS_SOURCE booleans on nodes.
graph::GraphDb finder_shaped_graph(std::size_t nodes, std::size_t edges) {
  graph::GraphDb db;
  util::Rng rng(4242);
  for (std::size_t i = 0; i < nodes; ++i) {
    db.add_node("Method", {{"IS_SOURCE", graph::Value{i % 97 == 0}}});
  }
  for (std::size_t i = 0; i < edges; ++i) {
    bool call = i % 8 != 0;
    graph::EdgeId e = db.add_edge(rng.next_below(nodes), rng.next_below(nodes),
                                  call ? "CALL" : "ALIAS");
    if (call) {
      db.set_edge_prop(e, "POLLUTED_POSITION",
                       graph::Value{std::vector<std::int64_t>{0, static_cast<std::int64_t>(i % 3)}});
    }
  }
  return db;
}

void BM_TypedTraversalStore(benchmark::State& state) {
  graph::GraphDb db = finder_shaped_graph(4000, 32000);
  std::size_t visited = 0;
  for (auto _ : state) {
    std::int64_t acc = 0;
    visited = 0;
    for (graph::NodeId n = 0; n < db.node_capacity(); ++n) {
      for (graph::EdgeId e : db.in_edges(n)) {
        const graph::Edge& edge = db.edge(e);
        if (edge.type != "CALL") continue;
        const graph::Value* pp = edge.prop("POLLUTED_POSITION");
        if (const auto* list = pp ? std::get_if<std::vector<std::int64_t>>(pp) : nullptr) {
          acc += list->front();
        }
        acc += db.node(edge.from).prop_bool("IS_SOURCE") ? 1 : 0;
        ++visited;
      }
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(visited));
}
BENCHMARK(BM_TypedTraversalStore);

void BM_TypedTraversalFrozen(benchmark::State& state) {
  graph::GraphDb db = finder_shaped_graph(4000, 32000);
  auto frozen_result = graph::FrozenGraph::freeze(db);
  graph::FrozenGraph fg = std::move(frozen_result.value());
  auto call = fg.edge_type_id("CALL");
  const graph::FrozenColumn* pp = fg.edge_column("POLLUTED_POSITION");
  const graph::FrozenColumn* source = fg.node_column("IS_SOURCE");
  std::size_t visited = 0;
  for (auto _ : state) {
    std::int64_t acc = 0;
    visited = 0;
    for (graph::NodeId n = 0; n < fg.node_count(); ++n) {
      graph::AdjacencyView view = fg.in_edges_typed_view(n, *call);
      for (std::size_t i = 0; i < view.size(); ++i) {
        auto list = pp->get_intlist(view.edge[i]);
        if (!list.empty()) acc += list.front();
        acc += source->get_bool(view.nbr[i]) ? 1 : 0;
        ++visited;
      }
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(visited));
}
BENCHMARK(BM_TypedTraversalFrozen);

void BM_FrozenTraversalDepth4(benchmark::State& state) {
  // The exact BM_TraversalDepth4 workload over the frozen CSR (random_graph
  // is single-typed, so untyped CSR order matches insertion order).
  graph::GraphDb db = random_graph(2000, 8000, false);
  auto frozen_result = graph::FrozenGraph::freeze(db);
  graph::FrozenGraph fg = std::move(frozen_result.value());
  auto expand = [](const graph::FrozenGraph& g, const graph::Path& path, const int& s) {
    std::vector<graph::Step<int>> steps;
    graph::AdjacencyView view = g.out_edges_view(path.end());
    for (std::size_t i = 0; i < view.size(); ++i) {
      steps.push_back(graph::Step<int>{view.edge[i], view.nbr[i], s});
    }
    return steps;
  };
  auto evaluate = [](const graph::FrozenGraph&, const graph::Path& path, const int&) {
    return path.length() >= 4 ? graph::Evaluation::ExcludeAndPrune
                              : graph::Evaluation::ExcludeAndContinue;
  };
  for (auto _ : state) {
    graph::TraversalLimits limits;
    limits.max_expansions = 200000;
    graph::Traverser<int, graph::FrozenGraph> t(fg, expand, evaluate,
                                                graph::Uniqueness::NodePath, limits);
    auto results = t.run(0, 0);
    benchmark::DoNotOptimize(results);
  }
}
BENCHMARK(BM_FrozenTraversalDepth4);

void BM_Freeze(benchmark::State& state) {
  graph::GraphDb db = finder_shaped_graph(4000, 32000);
  for (auto _ : state) {
    auto fg = graph::FrozenGraph::freeze(db);
    benchmark::DoNotOptimize(fg.ok());
  }
}
BENCHMARK(BM_Freeze);

void BM_GraphDeserialize(benchmark::State& state) {
  // Warm-start decode cost, store path: what load_snapshot(key) pays.
  graph::GraphDb db = finder_shaped_graph(4000, 32000);
  std::vector<std::byte> bytes = graph::serialize(db);
  for (auto _ : state) {
    auto loaded = graph::deserialize(bytes);
    benchmark::DoNotOptimize(loaded.ok());
  }
}
BENCHMARK(BM_GraphDeserialize);

void BM_FrozenAttach(benchmark::State& state) {
  // Warm-start cost, frozen path: full structural validation + zero-copy
  // span setup over an existing frame (what load_frozen's mmap pays, minus
  // the page faults).
  graph::GraphDb db = finder_shaped_graph(4000, 32000);
  auto frozen_result = graph::FrozenGraph::freeze(db);
  graph::FrozenGraph fg = std::move(frozen_result.value());
  std::vector<std::byte> frame(fg.frame().begin(), fg.frame().end());
  for (auto _ : state) {
    auto attached = graph::FrozenGraph::from_bytes(frame);
    benchmark::DoNotOptimize(attached.ok());
  }
}
BENCHMARK(BM_FrozenAttach);

// --- Adversarial query workloads: planner vs naive (docs/CYPHER.md) --------
//
// Pattern shapes chosen to be worst-case for left-to-right enumeration and
// best-case for the planner's backward reachability filters: an unbound (or
// huge-label) start flowing into a tiny selective end. Each class is
// measured twice — BM_*Naive forces the naive evaluator (--no-plan), BM_*
// Planned uses the planner — so the speedup is the ratio of the paired rows.
// Acceptance bar: >= 5x on at least one class; the planner must also never
// lose on the existing BM_CypherVarLengthQuery workload (source-anchored,
// which the planner correctly declines to reverse).

/// 20k Method nodes with random CALL wiring, plus 8 Sink nodes fed by a
/// handful of CALL edges — the "everything calls something, almost nothing
/// reaches a sink" shape of real gadget hunting.
graph::GraphDb planner_adversarial_graph() {
  graph::GraphDb db;
  util::Rng rng(2026);
  constexpr std::size_t kMethods = 20000;
  for (std::size_t i = 0; i < kMethods; ++i) {
    db.add_node("Method", {{"NAME", graph::Value{std::string("m") + std::to_string(i)}},
                           {"ID", graph::Value{static_cast<std::int64_t>(i)}}});
  }
  for (std::size_t i = 0; i < 2 * kMethods; ++i) {
    db.add_edge(rng.next_below(kMethods), rng.next_below(kMethods), "CALL");
  }
  for (std::size_t s = 0; s < 8; ++s) {
    graph::NodeId sink =
        db.add_node("Sink", {{"NAME", graph::Value{std::string("sink") + std::to_string(s)}}});
    for (std::size_t k = 0; k < 5; ++k) db.add_edge(rng.next_below(kMethods), sink, "CALL");
  }
  return db;
}

void bench_query(benchmark::State& state, const graph::GraphDb& db, const char* query,
                 bool use_planner) {
  cypher::QueryOptions options;
  options.use_planner = use_planner;
  for (auto _ : state) {
    auto result = cypher::run_query(db, query, options);
    benchmark::DoNotOptimize(result.ok());
  }
}

constexpr const char* kUnboundStartQuery = "MATCH (a)-[:CALL]->(b:Sink) RETURN b.NAME";
constexpr const char* kLongPathQuery =
    "MATCH (a:Method)-[:CALL*1..4]->(b:Sink) RETURN b.NAME";
constexpr const char* kSelectiveEndQuery =
    "MATCH (a:Method)-[:CALL]->(b:Method) WHERE b.ID = 17 RETURN a.ID";

void BM_QueryUnboundStartNaive(benchmark::State& state) {
  graph::GraphDb db = planner_adversarial_graph();
  bench_query(state, db, kUnboundStartQuery, false);
}
BENCHMARK(BM_QueryUnboundStartNaive);

void BM_QueryUnboundStartPlanned(benchmark::State& state) {
  graph::GraphDb db = planner_adversarial_graph();
  bench_query(state, db, kUnboundStartQuery, true);
}
BENCHMARK(BM_QueryUnboundStartPlanned);

void BM_QueryLongPathNaive(benchmark::State& state) {
  graph::GraphDb db = planner_adversarial_graph();
  bench_query(state, db, kLongPathQuery, false);
}
BENCHMARK(BM_QueryLongPathNaive);

void BM_QueryLongPathPlanned(benchmark::State& state) {
  graph::GraphDb db = planner_adversarial_graph();
  bench_query(state, db, kLongPathQuery, true);
}
BENCHMARK(BM_QueryLongPathPlanned);

void BM_QuerySelectiveEndNaive(benchmark::State& state) {
  graph::GraphDb db = planner_adversarial_graph();
  bench_query(state, db, kSelectiveEndQuery, false);
}
BENCHMARK(BM_QuerySelectiveEndNaive);

void BM_QuerySelectiveEndPlanned(benchmark::State& state) {
  graph::GraphDb db = planner_adversarial_graph();
  bench_query(state, db, kSelectiveEndQuery, true);
}
BENCHMARK(BM_QuerySelectiveEndPlanned);

void BM_FrozenGadgetChainSearch(benchmark::State& state) {
  corpus::Component component = corpus::build_component("commons-collections(3.2.1)");
  cpg::Cpg cpg = cpg::build_cpg(component.link());
  auto frozen_result = graph::FrozenGraph::freeze(cpg.db);
  graph::FrozenGraph fg = std::move(frozen_result.value());
  for (auto _ : state) {
    finder::GadgetChainFinder finder(fg);
    finder::FinderReport report = finder.find_all();
    benchmark::DoNotOptimize(report.chains.size());
  }
}
BENCHMARK(BM_FrozenGadgetChainSearch);

}  // namespace

BENCHMARK_MAIN();
