// Ablation bench: quantifies each design choice DESIGN.md calls out by
// rerunning Tabby with one mechanism disabled at a time on representative
// components. Shows why the paper's pieces exist:
//   - PCG pruning (all-∞ Polluted_Position): path-explosion relief,
//   - ALIAS edges: polymorphic chains are unreachable without them,
//   - interprocedural Action summaries: rejecting sanitised data flows,
//   - Trigger_Condition checking: rejecting uncontrollable sink arguments,
//   - bidirectional ALIAS traversal: the permissive published-plugin mode.
#include <cstdio>

#include "corpus/components.hpp"
#include "cpg/builder.hpp"
#include "evalkit/evalkit.hpp"
#include "finder/finder.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace tabby;

namespace {

struct Variant {
  const char* name;
  cpg::CpgOptions cpg;
  finder::FinderOptions finder;
};

std::vector<Variant> variants() {
  std::vector<Variant> out;
  out.push_back({"full (paper config)", {}, {}});

  Variant no_prune{"no PCG pruning", {}, {}};
  no_prune.cpg.prune_uncontrollable_calls = false;
  out.push_back(no_prune);

  Variant no_alias{"no ALIAS edges", {}, {}};
  no_alias.cpg.build_alias_edges = false;
  out.push_back(no_alias);

  Variant superclass_alias{"superclass-only aliases (GI polymorphism)", {}, {}};
  superclass_alias.cpg.alias_superclass_only = true;
  out.push_back(superclass_alias);

  Variant intraproc{"no interprocedural Action", {}, {}};
  intraproc.cpg.analysis.interprocedural = false;
  intraproc.cpg.analysis.unknown_return_controllable = true;
  out.push_back(intraproc);

  Variant no_tc{"no Trigger_Condition check", {}, {}};
  no_tc.finder.check_trigger_conditions = true;
  no_tc.finder.check_trigger_conditions = false;
  out.push_back(no_tc);

  Variant bidi{"bidirectional ALIAS traversal", {}, {}};
  bidi.finder.alias_bidirectional = true;
  out.push_back(bidi);

  // Pruning and TC-checking are redundant defences individually; disabling
  // BOTH is the Serianalyzer failure mode (explodes on the const maze).
  Variant sl_mode{"no pruning + no TC (Serianalyzer mode)", {}, {}};
  sl_mode.cpg.prune_uncontrollable_calls = false;
  sl_mode.finder.check_trigger_conditions = false;
  sl_mode.finder.max_expansions = 400'000;
  out.push_back(sl_mode);
  return out;
}

}  // namespace

int main() {
  std::printf("Ablation — Tabby with one mechanism disabled at a time\n\n");

  const char* components[] = {"commons-collections(3.2.1)", "Clojure", "spring-aop"};
  for (const char* name : components) {
    corpus::Component component = corpus::build_component(name);
    jir::Program program = component.link();
    std::printf("component: %s (%zu real chains planted, %zu known in dataset)\n", name,
                component.truths.size(), component.known_in_dataset());

    util::Table table({"variant", "result", "fake", "known", "unknown", "expansions",
                       "exhausted", "time(s)"});
    for (const Variant& variant : variants()) {
      util::Stopwatch watch;
      cpg::Cpg cpg = cpg::build_cpg(program, variant.cpg);
      finder::GadgetChainFinder finder(cpg.db, variant.finder);
      finder::FinderReport report = finder.find_all();
      double seconds = watch.elapsed_seconds();
      evalkit::Classification c = evalkit::classify(report.chains, component.truths);
      table.add_row({variant.name, std::to_string(c.result), std::to_string(c.fake),
                     std::to_string(c.known), std::to_string(c.unknown),
                     std::to_string(report.expansions),
                     report.budget_exhausted ? "yes" : "no", util::format_double(seconds, 3)});
    }
    std::printf("%s\n", table.render().c_str());
  }

  std::printf("reading guide: 'no ALIAS edges' loses the interface-dispatch chains; 'no "
              "interprocedural Action' admits the sanitiser fakes; 'no Trigger_Condition check' "
              "admits the const-web fakes; 'no PCG pruning' + 'no TC check' together is the "
              "Serianalyzer failure mode.\n");
  return 0;
}
