// Reproduces Table IX (RQ2): the three-tool comparison over the 26
// ysoserial/marshalsec component models. Prints the same columns as the
// paper (Result / Fake / Known / Unknown per tool, FPR, FNR, time), the
// totals row, and a VM ground-truth verification summary (the automated
// equivalent of the paper's hand-written PoCs). "X" marks a Serianalyzer
// run that exhausted its budget (the paper's non-terminating cells).
#include <chrono>
#include <cstdio>

#include "corpus/components.hpp"
#include "cpg/builder.hpp"
#include "evalkit/evalkit.hpp"
#include "finder/finder.hpp"
#include "finder/verify.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace tabby;

namespace {

std::string fmt_or_x(std::size_t value, bool exploded) {
  return exploded ? "X" : std::to_string(value);
}

std::string pct_or_x(double value, bool exploded) {
  return exploded ? "X" : util::format_double(value, 1);
}

}  // namespace

int main() {
  std::printf("Table IX — comparison with state-of-the-art tools (RQ2)\n");
  std::printf("GI = GadgetInspector-like baseline, TB = Tabby, SL = Serianalyzer-like baseline\n\n");

  util::Table table({"Component", "Known in dataset", "GI res", "TB res", "SL res", "GI fake",
                     "TB fake", "SL fake", "GI known", "TB known", "SL known", "GI unk", "TB unk",
                     "SL unk", "GI FPR%", "TB FPR%", "SL FPR%", "GI FNR%", "TB FNR%", "SL FNR%",
                     "TB time(s)"});

  struct Totals {
    std::size_t result = 0, fake = 0, known = 0, unknown = 0;
    double fpr_sum = 0.0, fnr_sum = 0.0;
    int fpr_rows = 0, fnr_rows = 0;
  } gi_total, tb_total, sl_total;

  std::size_t dataset_total = 0;
  std::size_t truths_checked = 0, truths_ok = 0, fakes_checked = 0, fakes_ok = 0;
  // Verification throughput: the supervised re-validation post-pass
  // (`--verify`) over every statically reported chain, in-process serial —
  // the per-chain cost the crash-isolated mode amortises across workers.
  std::size_t verify_chains_total = 0, verify_effective = 0, verify_refuted = 0,
              verify_unconfirmed = 0, verify_vm_steps = 0;
  double verify_seconds = 0.0;

  for (const std::string& name : corpus::component_names()) {
    corpus::Component component = corpus::build_component(name);
    evalkit::ComparisonRow row = evalkit::evaluate_component(component);
    dataset_total += row.known_in_dataset;

    auto fold = [](Totals& t, const evalkit::ComparisonRow::PerTool& per) {
      if (!per.exploded) {
        t.result += per.result;
        t.fake += per.fake;
        t.known += per.known;
        t.unknown += per.unknown;
        if (per.result > 0) {
          t.fpr_sum += per.fpr;
          ++t.fpr_rows;
        }
      }
      t.fnr_sum += per.fnr;
      ++t.fnr_rows;
    };
    fold(gi_total, row.gi);
    fold(tb_total, row.tb);
    fold(sl_total, row.sl);

    table.add_row({row.component, std::to_string(row.known_in_dataset),
                   fmt_or_x(row.gi.result, row.gi.exploded), std::to_string(row.tb.result),
                   fmt_or_x(row.sl.result, row.sl.exploded),
                   fmt_or_x(row.gi.fake, row.gi.exploded), std::to_string(row.tb.fake),
                   fmt_or_x(row.sl.fake, row.sl.exploded),
                   fmt_or_x(row.gi.known, row.gi.exploded), std::to_string(row.tb.known),
                   fmt_or_x(row.sl.known, row.sl.exploded),
                   fmt_or_x(row.gi.unknown, row.gi.exploded), std::to_string(row.tb.unknown),
                   fmt_or_x(row.sl.unknown, row.sl.exploded),
                   pct_or_x(row.gi.fpr, row.gi.exploded), util::format_double(row.tb.fpr, 1),
                   pct_or_x(row.sl.fpr, row.sl.exploded),
                   pct_or_x(row.gi.fnr, row.gi.exploded), util::format_double(row.tb.fnr, 1),
                   pct_or_x(row.sl.fnr, row.sl.exploded),
                   util::format_double(row.tb.seconds, 3)});

    // Ground-truth verification (the PoC step).
    jir::Program program = component.link();
    evalkit::VerificationOutcome outcome =
        evalkit::verify_ground_truth(program, component.truths, component.fakes);
    truths_checked += outcome.truths_checked;
    truths_ok += outcome.truths_effective;
    fakes_checked += outcome.fakes_checked;
    fakes_ok += outcome.fakes_refuted;

    // Verification throughput over the reported (not ground-truth) chains.
    cpg::Cpg cpg = cpg::build_cpg(program, {});
    std::vector<finder::GadgetChain> chains =
        finder::GadgetChainFinder(cpg.db, {}).find_all().chains;
    finder::AliasView aliases(cpg.db);
    auto start = std::chrono::steady_clock::now();
    finder::VerifyReport verified =
        finder::verify_chains(program, aliases, chains, finder::VerifyOptions{});
    verify_seconds += std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    verify_chains_total += chains.size();
    verify_effective += verified.effective;
    verify_refuted += verified.refuted;
    verify_unconfirmed += verified.unconfirmed;
    verify_vm_steps += verified.steps_total;
  }

  table.add_row({"Total", std::to_string(dataset_total), std::to_string(gi_total.result),
                 std::to_string(tb_total.result), std::to_string(sl_total.result),
                 std::to_string(gi_total.fake), std::to_string(tb_total.fake),
                 std::to_string(sl_total.fake), std::to_string(gi_total.known),
                 std::to_string(tb_total.known), std::to_string(sl_total.known),
                 std::to_string(gi_total.unknown), std::to_string(tb_total.unknown),
                 std::to_string(sl_total.unknown),
                 util::format_double(gi_total.fpr_sum / std::max(1, gi_total.fpr_rows), 1),
                 util::format_double(tb_total.fpr_sum / std::max(1, tb_total.fpr_rows), 1),
                 util::format_double(sl_total.fpr_sum / std::max(1, sl_total.fpr_rows), 1),
                 util::format_double(gi_total.fnr_sum / std::max(1, gi_total.fnr_rows), 1),
                 util::format_double(tb_total.fnr_sum / std::max(1, tb_total.fnr_rows), 1),
                 util::format_double(sl_total.fnr_sum / std::max(1, sl_total.fnr_rows), 1), "-"});

  std::printf("%s\n", table.render().c_str());
  std::printf("paper totals for comparison: dataset 38; GI 129/120/5/4, TB 79/26/26/27, SL "
              "593/585/7/1; avg FPR GI 93.0 TB 32.9 SL 98.6; avg FNR GI 86.8 TB 31.6 SL 81.6\n\n");
  std::printf("VM ground-truth verification: %zu/%zu real chains fired their sink, %zu/%zu fake "
              "structures refuted\n",
              truths_ok, truths_checked, fakes_ok, fakes_checked);
  double chains_per_s = verify_seconds > 0.0
                            ? static_cast<double>(verify_chains_total) / verify_seconds
                            : 0.0;
  std::printf("runtime re-validation (--verify): %zu reported chain(s) in %s s (%s chains/s, "
              "%zu VM steps): %zu EFFECTIVE, %zu REFUTED, %zu UNCONFIRMED\n",
              verify_chains_total, util::format_double(verify_seconds, 3).c_str(),
              util::format_double(chains_per_s, 1).c_str(), verify_vm_steps, verify_effective,
              verify_refuted, verify_unconfirmed);
  if (verify_chains_total > 0) {
    // The FPR effect: the share of statically reported chains the VM refutes
    // — residual false positives dynamic confirmation removes from triage.
    std::printf("  FPR effect: %s%% of reported chains refuted by the VM\n",
                util::format_double(100.0 * static_cast<double>(verify_refuted) /
                                        static_cast<double>(verify_chains_total),
                                    1).c_str());
  }
  return (truths_ok == truths_checked && fakes_ok == fakes_checked) ? 0 : 1;
}
