// Reproduces Table X (RQ3): gadget chain detection across the five
// development-environment scenes, and dumps the Spring JNDI chains of
// Table XI found by the traversal.
#include <cstdio>

#include "corpus/scenes.hpp"
#include "cpg/builder.hpp"
#include "evalkit/evalkit.hpp"
#include "finder/finder.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace tabby;

int main() {
  std::printf("Table X — development-environment detection (RQ3)\n\n");

  util::Table table({"Scene", "Version", "Jar file count", "Code size(MB)", "Result count",
                     "Effective chains", "FPR%", "Search time(s)"});

  std::size_t total_result = 0;
  std::size_t total_effective = 0;
  for (const std::string& name : corpus::scene_names()) {
    corpus::Scene scene = corpus::build_scene(name);
    evalkit::SceneRow row = evalkit::evaluate_scene(scene);
    total_result += row.result;
    total_effective += row.effective;
    table.add_row({row.scene, row.version, std::to_string(row.jar_count),
                   util::format_double(row.code_mb, 1), std::to_string(row.result),
                   std::to_string(row.effective), util::format_double(row.fpr, 1),
                   util::format_double(row.search_seconds, 3)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("paper rows: Spring 10/7 30.0%%, JDK8 13/10 23.1%%, Tomcat 4/3 25%%, Jetty 6/4 "
              "33.3%%, Dubbo 5/3 40%%\n");
  std::printf("scene totals: %zu results, %zu effective\n\n", total_result, total_effective);

  // --- Table XI: the Spring JNDI chains ------------------------------------
  std::printf("Table XI — JNDI gadget chains found in the Spring scene\n\n");
  corpus::Scene spring = corpus::build_scene("Spring");
  cpg::Cpg cpg = cpg::build_cpg(spring.link());
  finder::GadgetChainFinder finder(cpg.db);
  for (const finder::GadgetChain& chain : finder.find_all().chains) {
    if (chain.sink_signature() != "javax.naming.Context#lookup/1") continue;
    bool springframework = false;
    for (const std::string& sig : chain.signatures) {
      if (util::contains(sig, "springframework")) springframework = true;
    }
    if (!springframework) continue;
    std::printf("%s\n", chain.to_string().c_str());
  }
  return 0;
}
