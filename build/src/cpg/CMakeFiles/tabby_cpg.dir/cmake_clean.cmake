file(REMOVE_RECURSE
  "CMakeFiles/tabby_cpg.dir/builder.cpp.o"
  "CMakeFiles/tabby_cpg.dir/builder.cpp.o.d"
  "CMakeFiles/tabby_cpg.dir/export.cpp.o"
  "CMakeFiles/tabby_cpg.dir/export.cpp.o.d"
  "CMakeFiles/tabby_cpg.dir/sinks.cpp.o"
  "CMakeFiles/tabby_cpg.dir/sinks.cpp.o.d"
  "libtabby_cpg.a"
  "libtabby_cpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabby_cpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
