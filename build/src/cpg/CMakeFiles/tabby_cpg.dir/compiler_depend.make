# Empty compiler generated dependencies file for tabby_cpg.
# This may be replaced when dependencies are built.
