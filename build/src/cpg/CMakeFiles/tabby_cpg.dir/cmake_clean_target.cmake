file(REMOVE_RECURSE
  "libtabby_cpg.a"
)
