file(REMOVE_RECURSE
  "libtabby_finder.a"
)
