# Empty dependencies file for tabby_finder.
# This may be replaced when dependencies are built.
