file(REMOVE_RECURSE
  "CMakeFiles/tabby_finder.dir/finder.cpp.o"
  "CMakeFiles/tabby_finder.dir/finder.cpp.o.d"
  "CMakeFiles/tabby_finder.dir/payload.cpp.o"
  "CMakeFiles/tabby_finder.dir/payload.cpp.o.d"
  "libtabby_finder.a"
  "libtabby_finder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabby_finder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
