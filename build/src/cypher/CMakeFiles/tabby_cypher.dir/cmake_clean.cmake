file(REMOVE_RECURSE
  "CMakeFiles/tabby_cypher.dir/cypher.cpp.o"
  "CMakeFiles/tabby_cypher.dir/cypher.cpp.o.d"
  "libtabby_cypher.a"
  "libtabby_cypher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabby_cypher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
