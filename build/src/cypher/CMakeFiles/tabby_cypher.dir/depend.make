# Empty dependencies file for tabby_cypher.
# This may be replaced when dependencies are built.
