file(REMOVE_RECURSE
  "libtabby_cypher.a"
)
