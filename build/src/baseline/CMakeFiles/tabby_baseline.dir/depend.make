# Empty dependencies file for tabby_baseline.
# This may be replaced when dependencies are built.
