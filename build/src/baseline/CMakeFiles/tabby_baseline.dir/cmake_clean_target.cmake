file(REMOVE_RECURSE
  "libtabby_baseline.a"
)
