file(REMOVE_RECURSE
  "CMakeFiles/tabby_baseline.dir/baselines.cpp.o"
  "CMakeFiles/tabby_baseline.dir/baselines.cpp.o.d"
  "libtabby_baseline.a"
  "libtabby_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabby_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
