file(REMOVE_RECURSE
  "CMakeFiles/tabby_runtime.dir/objectgraph.cpp.o"
  "CMakeFiles/tabby_runtime.dir/objectgraph.cpp.o.d"
  "CMakeFiles/tabby_runtime.dir/vm.cpp.o"
  "CMakeFiles/tabby_runtime.dir/vm.cpp.o.d"
  "libtabby_runtime.a"
  "libtabby_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabby_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
