file(REMOVE_RECURSE
  "libtabby_runtime.a"
)
