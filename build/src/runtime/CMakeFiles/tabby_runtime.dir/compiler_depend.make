# Empty compiler generated dependencies file for tabby_runtime.
# This may be replaced when dependencies are built.
