
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/objectgraph.cpp" "src/runtime/CMakeFiles/tabby_runtime.dir/objectgraph.cpp.o" "gcc" "src/runtime/CMakeFiles/tabby_runtime.dir/objectgraph.cpp.o.d"
  "/root/repo/src/runtime/vm.cpp" "src/runtime/CMakeFiles/tabby_runtime.dir/vm.cpp.o" "gcc" "src/runtime/CMakeFiles/tabby_runtime.dir/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/jir/CMakeFiles/tabby_jir.dir/DependInfo.cmake"
  "/root/repo/build/src/cpg/CMakeFiles/tabby_cpg.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/tabby_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/tabby_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tabby_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tabby_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
