# Empty dependencies file for tabby_analysis.
# This may be replaced when dependencies are built.
