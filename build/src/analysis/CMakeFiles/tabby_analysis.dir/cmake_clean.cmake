file(REMOVE_RECURSE
  "CMakeFiles/tabby_analysis.dir/controllability.cpp.o"
  "CMakeFiles/tabby_analysis.dir/controllability.cpp.o.d"
  "CMakeFiles/tabby_analysis.dir/domain.cpp.o"
  "CMakeFiles/tabby_analysis.dir/domain.cpp.o.d"
  "libtabby_analysis.a"
  "libtabby_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabby_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
