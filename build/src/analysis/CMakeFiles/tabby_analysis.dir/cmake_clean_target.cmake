file(REMOVE_RECURSE
  "libtabby_analysis.a"
)
