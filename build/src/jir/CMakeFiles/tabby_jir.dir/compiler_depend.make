# Empty compiler generated dependencies file for tabby_jir.
# This may be replaced when dependencies are built.
