
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jir/builder.cpp" "src/jir/CMakeFiles/tabby_jir.dir/builder.cpp.o" "gcc" "src/jir/CMakeFiles/tabby_jir.dir/builder.cpp.o.d"
  "/root/repo/src/jir/hierarchy.cpp" "src/jir/CMakeFiles/tabby_jir.dir/hierarchy.cpp.o" "gcc" "src/jir/CMakeFiles/tabby_jir.dir/hierarchy.cpp.o.d"
  "/root/repo/src/jir/model.cpp" "src/jir/CMakeFiles/tabby_jir.dir/model.cpp.o" "gcc" "src/jir/CMakeFiles/tabby_jir.dir/model.cpp.o.d"
  "/root/repo/src/jir/parser.cpp" "src/jir/CMakeFiles/tabby_jir.dir/parser.cpp.o" "gcc" "src/jir/CMakeFiles/tabby_jir.dir/parser.cpp.o.d"
  "/root/repo/src/jir/printer.cpp" "src/jir/CMakeFiles/tabby_jir.dir/printer.cpp.o" "gcc" "src/jir/CMakeFiles/tabby_jir.dir/printer.cpp.o.d"
  "/root/repo/src/jir/stmt.cpp" "src/jir/CMakeFiles/tabby_jir.dir/stmt.cpp.o" "gcc" "src/jir/CMakeFiles/tabby_jir.dir/stmt.cpp.o.d"
  "/root/repo/src/jir/type.cpp" "src/jir/CMakeFiles/tabby_jir.dir/type.cpp.o" "gcc" "src/jir/CMakeFiles/tabby_jir.dir/type.cpp.o.d"
  "/root/repo/src/jir/validate.cpp" "src/jir/CMakeFiles/tabby_jir.dir/validate.cpp.o" "gcc" "src/jir/CMakeFiles/tabby_jir.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tabby_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
