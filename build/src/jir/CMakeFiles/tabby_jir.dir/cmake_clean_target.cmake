file(REMOVE_RECURSE
  "libtabby_jir.a"
)
