file(REMOVE_RECURSE
  "CMakeFiles/tabby_jir.dir/builder.cpp.o"
  "CMakeFiles/tabby_jir.dir/builder.cpp.o.d"
  "CMakeFiles/tabby_jir.dir/hierarchy.cpp.o"
  "CMakeFiles/tabby_jir.dir/hierarchy.cpp.o.d"
  "CMakeFiles/tabby_jir.dir/model.cpp.o"
  "CMakeFiles/tabby_jir.dir/model.cpp.o.d"
  "CMakeFiles/tabby_jir.dir/parser.cpp.o"
  "CMakeFiles/tabby_jir.dir/parser.cpp.o.d"
  "CMakeFiles/tabby_jir.dir/printer.cpp.o"
  "CMakeFiles/tabby_jir.dir/printer.cpp.o.d"
  "CMakeFiles/tabby_jir.dir/stmt.cpp.o"
  "CMakeFiles/tabby_jir.dir/stmt.cpp.o.d"
  "CMakeFiles/tabby_jir.dir/type.cpp.o"
  "CMakeFiles/tabby_jir.dir/type.cpp.o.d"
  "CMakeFiles/tabby_jir.dir/validate.cpp.o"
  "CMakeFiles/tabby_jir.dir/validate.cpp.o.d"
  "libtabby_jir.a"
  "libtabby_jir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabby_jir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
