file(REMOVE_RECURSE
  "libtabby_corpus.a"
)
