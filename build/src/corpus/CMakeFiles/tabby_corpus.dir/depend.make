# Empty dependencies file for tabby_corpus.
# This may be replaced when dependencies are built.
