file(REMOVE_RECURSE
  "CMakeFiles/tabby_corpus.dir/components.cpp.o"
  "CMakeFiles/tabby_corpus.dir/components.cpp.o.d"
  "CMakeFiles/tabby_corpus.dir/jdk.cpp.o"
  "CMakeFiles/tabby_corpus.dir/jdk.cpp.o.d"
  "CMakeFiles/tabby_corpus.dir/noise.cpp.o"
  "CMakeFiles/tabby_corpus.dir/noise.cpp.o.d"
  "CMakeFiles/tabby_corpus.dir/planter.cpp.o"
  "CMakeFiles/tabby_corpus.dir/planter.cpp.o.d"
  "CMakeFiles/tabby_corpus.dir/scenes.cpp.o"
  "CMakeFiles/tabby_corpus.dir/scenes.cpp.o.d"
  "CMakeFiles/tabby_corpus.dir/ysoserial.cpp.o"
  "CMakeFiles/tabby_corpus.dir/ysoserial.cpp.o.d"
  "libtabby_corpus.a"
  "libtabby_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabby_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
