
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/components.cpp" "src/corpus/CMakeFiles/tabby_corpus.dir/components.cpp.o" "gcc" "src/corpus/CMakeFiles/tabby_corpus.dir/components.cpp.o.d"
  "/root/repo/src/corpus/jdk.cpp" "src/corpus/CMakeFiles/tabby_corpus.dir/jdk.cpp.o" "gcc" "src/corpus/CMakeFiles/tabby_corpus.dir/jdk.cpp.o.d"
  "/root/repo/src/corpus/noise.cpp" "src/corpus/CMakeFiles/tabby_corpus.dir/noise.cpp.o" "gcc" "src/corpus/CMakeFiles/tabby_corpus.dir/noise.cpp.o.d"
  "/root/repo/src/corpus/planter.cpp" "src/corpus/CMakeFiles/tabby_corpus.dir/planter.cpp.o" "gcc" "src/corpus/CMakeFiles/tabby_corpus.dir/planter.cpp.o.d"
  "/root/repo/src/corpus/scenes.cpp" "src/corpus/CMakeFiles/tabby_corpus.dir/scenes.cpp.o" "gcc" "src/corpus/CMakeFiles/tabby_corpus.dir/scenes.cpp.o.d"
  "/root/repo/src/corpus/ysoserial.cpp" "src/corpus/CMakeFiles/tabby_corpus.dir/ysoserial.cpp.o" "gcc" "src/corpus/CMakeFiles/tabby_corpus.dir/ysoserial.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/jar/CMakeFiles/tabby_jar.dir/DependInfo.cmake"
  "/root/repo/build/src/jir/CMakeFiles/tabby_jir.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/tabby_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tabby_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cpg/CMakeFiles/tabby_cpg.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/tabby_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/tabby_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/tabby_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
