# Empty dependencies file for tabby_evalkit.
# This may be replaced when dependencies are built.
