file(REMOVE_RECURSE
  "libtabby_evalkit.a"
)
