file(REMOVE_RECURSE
  "CMakeFiles/tabby_evalkit.dir/evalkit.cpp.o"
  "CMakeFiles/tabby_evalkit.dir/evalkit.cpp.o.d"
  "libtabby_evalkit.a"
  "libtabby_evalkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabby_evalkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
