# CMake generated Testfile for 
# Source directory: /root/repo/src/evalkit
# Build directory: /root/repo/build/src/evalkit
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
