# Empty dependencies file for tabby_graph.
# This may be replaced when dependencies are built.
