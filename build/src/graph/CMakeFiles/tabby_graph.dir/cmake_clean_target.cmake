file(REMOVE_RECURSE
  "libtabby_graph.a"
)
