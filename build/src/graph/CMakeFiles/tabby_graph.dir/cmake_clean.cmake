file(REMOVE_RECURSE
  "CMakeFiles/tabby_graph.dir/graph.cpp.o"
  "CMakeFiles/tabby_graph.dir/graph.cpp.o.d"
  "CMakeFiles/tabby_graph.dir/serialize.cpp.o"
  "CMakeFiles/tabby_graph.dir/serialize.cpp.o.d"
  "CMakeFiles/tabby_graph.dir/value.cpp.o"
  "CMakeFiles/tabby_graph.dir/value.cpp.o.d"
  "libtabby_graph.a"
  "libtabby_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabby_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
