# Empty compiler generated dependencies file for tabby_cfg.
# This may be replaced when dependencies are built.
