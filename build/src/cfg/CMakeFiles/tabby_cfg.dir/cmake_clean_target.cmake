file(REMOVE_RECURSE
  "libtabby_cfg.a"
)
