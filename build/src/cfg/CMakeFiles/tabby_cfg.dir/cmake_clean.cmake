file(REMOVE_RECURSE
  "CMakeFiles/tabby_cfg.dir/cfg.cpp.o"
  "CMakeFiles/tabby_cfg.dir/cfg.cpp.o.d"
  "libtabby_cfg.a"
  "libtabby_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabby_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
