file(REMOVE_RECURSE
  "CMakeFiles/tabby_jar.dir/archive.cpp.o"
  "CMakeFiles/tabby_jar.dir/archive.cpp.o.d"
  "libtabby_jar.a"
  "libtabby_jar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabby_jar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
