file(REMOVE_RECURSE
  "libtabby_jar.a"
)
