# Empty compiler generated dependencies file for tabby_jar.
# This may be replaced when dependencies are built.
