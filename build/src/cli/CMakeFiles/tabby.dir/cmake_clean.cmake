file(REMOVE_RECURSE
  "CMakeFiles/tabby.dir/main.cpp.o"
  "CMakeFiles/tabby.dir/main.cpp.o.d"
  "tabby"
  "tabby.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabby.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
