# Empty compiler generated dependencies file for tabby.
# This may be replaced when dependencies are built.
