# Empty dependencies file for tabby_cli.
# This may be replaced when dependencies are built.
