file(REMOVE_RECURSE
  "CMakeFiles/tabby_cli.dir/cli.cpp.o"
  "CMakeFiles/tabby_cli.dir/cli.cpp.o.d"
  "libtabby_cli.a"
  "libtabby_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabby_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
