file(REMOVE_RECURSE
  "libtabby_cli.a"
)
