file(REMOVE_RECURSE
  "CMakeFiles/tabby_util.dir/strings.cpp.o"
  "CMakeFiles/tabby_util.dir/strings.cpp.o.d"
  "CMakeFiles/tabby_util.dir/table.cpp.o"
  "CMakeFiles/tabby_util.dir/table.cpp.o.d"
  "libtabby_util.a"
  "libtabby_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabby_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
