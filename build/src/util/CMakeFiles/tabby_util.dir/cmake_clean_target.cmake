file(REMOVE_RECURSE
  "libtabby_util.a"
)
