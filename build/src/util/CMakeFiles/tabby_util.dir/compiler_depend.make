# Empty compiler generated dependencies file for tabby_util.
# This may be replaced when dependencies are built.
