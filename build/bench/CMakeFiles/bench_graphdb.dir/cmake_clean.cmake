file(REMOVE_RECURSE
  "CMakeFiles/bench_graphdb.dir/bench_graphdb.cpp.o"
  "CMakeFiles/bench_graphdb.dir/bench_graphdb.cpp.o.d"
  "bench_graphdb"
  "bench_graphdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_graphdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
