# Empty compiler generated dependencies file for bench_graphdb.
# This may be replaced when dependencies are built.
