# Empty compiler generated dependencies file for bench_table8_cpg_generation.
# This may be replaced when dependencies are built.
