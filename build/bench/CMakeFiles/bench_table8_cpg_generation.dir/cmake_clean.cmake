file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_cpg_generation.dir/bench_table8_cpg_generation.cpp.o"
  "CMakeFiles/bench_table8_cpg_generation.dir/bench_table8_cpg_generation.cpp.o.d"
  "bench_table8_cpg_generation"
  "bench_table8_cpg_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_cpg_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
