# Empty dependencies file for bench_table9_comparison.
# This may be replaced when dependencies are built.
