file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_comparison.dir/bench_table9_comparison.cpp.o"
  "CMakeFiles/bench_table9_comparison.dir/bench_table9_comparison.cpp.o.d"
  "bench_table9_comparison"
  "bench_table9_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
