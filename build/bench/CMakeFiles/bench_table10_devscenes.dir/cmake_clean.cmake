file(REMOVE_RECURSE
  "CMakeFiles/bench_table10_devscenes.dir/bench_table10_devscenes.cpp.o"
  "CMakeFiles/bench_table10_devscenes.dir/bench_table10_devscenes.cpp.o.d"
  "bench_table10_devscenes"
  "bench_table10_devscenes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_devscenes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
