# Empty dependencies file for bench_table10_devscenes.
# This may be replaced when dependencies are built.
