file(REMOVE_RECURSE
  "CMakeFiles/urldns.dir/urldns.cpp.o"
  "CMakeFiles/urldns.dir/urldns.cpp.o.d"
  "urldns"
  "urldns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urldns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
