# Empty dependencies file for urldns.
# This may be replaced when dependencies are built.
