# Empty dependencies file for custom_query.
# This may be replaced when dependencies are built.
