file(REMOVE_RECURSE
  "CMakeFiles/custom_query.dir/custom_query.cpp.o"
  "CMakeFiles/custom_query.dir/custom_query.cpp.o.d"
  "custom_query"
  "custom_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
