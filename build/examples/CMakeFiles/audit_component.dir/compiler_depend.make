# Empty compiler generated dependencies file for audit_component.
# This may be replaced when dependencies are built.
