file(REMOVE_RECURSE
  "CMakeFiles/audit_component.dir/audit_component.cpp.o"
  "CMakeFiles/audit_component.dir/audit_component.cpp.o.d"
  "audit_component"
  "audit_component.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audit_component.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
