# Empty dependencies file for jir_test.
# This may be replaced when dependencies are built.
