file(REMOVE_RECURSE
  "CMakeFiles/jir_test.dir/jir_test.cpp.o"
  "CMakeFiles/jir_test.dir/jir_test.cpp.o.d"
  "jir_test"
  "jir_test.pdb"
  "jir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
