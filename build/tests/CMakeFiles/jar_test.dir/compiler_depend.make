# Empty compiler generated dependencies file for jar_test.
# This may be replaced when dependencies are built.
