file(REMOVE_RECURSE
  "CMakeFiles/jar_test.dir/jar_test.cpp.o"
  "CMakeFiles/jar_test.dir/jar_test.cpp.o.d"
  "jar_test"
  "jar_test.pdb"
  "jar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
