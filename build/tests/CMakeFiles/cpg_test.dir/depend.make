# Empty dependencies file for cpg_test.
# This may be replaced when dependencies are built.
