file(REMOVE_RECURSE
  "CMakeFiles/cpg_test.dir/cpg_test.cpp.o"
  "CMakeFiles/cpg_test.dir/cpg_test.cpp.o.d"
  "cpg_test"
  "cpg_test.pdb"
  "cpg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
