file(REMOVE_RECURSE
  "CMakeFiles/planter_test.dir/planter_test.cpp.o"
  "CMakeFiles/planter_test.dir/planter_test.cpp.o.d"
  "planter_test"
  "planter_test.pdb"
  "planter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
