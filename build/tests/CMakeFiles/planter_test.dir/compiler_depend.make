# Empty compiler generated dependencies file for planter_test.
# This may be replaced when dependencies are built.
