# Empty dependencies file for cfg_test.
# This may be replaced when dependencies are built.
