file(REMOVE_RECURSE
  "CMakeFiles/cfg_test.dir/cfg_test.cpp.o"
  "CMakeFiles/cfg_test.dir/cfg_test.cpp.o.d"
  "cfg_test"
  "cfg_test.pdb"
  "cfg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
