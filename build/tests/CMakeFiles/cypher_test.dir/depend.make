# Empty dependencies file for cypher_test.
# This may be replaced when dependencies are built.
