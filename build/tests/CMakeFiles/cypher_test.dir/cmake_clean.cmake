file(REMOVE_RECURSE
  "CMakeFiles/cypher_test.dir/cypher_test.cpp.o"
  "CMakeFiles/cypher_test.dir/cypher_test.cpp.o.d"
  "cypher_test"
  "cypher_test.pdb"
  "cypher_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cypher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
