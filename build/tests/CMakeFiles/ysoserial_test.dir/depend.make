# Empty dependencies file for ysoserial_test.
# This may be replaced when dependencies are built.
