file(REMOVE_RECURSE
  "CMakeFiles/ysoserial_test.dir/ysoserial_test.cpp.o"
  "CMakeFiles/ysoserial_test.dir/ysoserial_test.cpp.o.d"
  "ysoserial_test"
  "ysoserial_test.pdb"
  "ysoserial_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ysoserial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
