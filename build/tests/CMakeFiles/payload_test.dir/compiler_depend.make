# Empty compiler generated dependencies file for payload_test.
# This may be replaced when dependencies are built.
