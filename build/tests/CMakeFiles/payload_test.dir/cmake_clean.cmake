file(REMOVE_RECURSE
  "CMakeFiles/payload_test.dir/payload_test.cpp.o"
  "CMakeFiles/payload_test.dir/payload_test.cpp.o.d"
  "payload_test"
  "payload_test.pdb"
  "payload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/payload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
