# Empty dependencies file for finder_test.
# This may be replaced when dependencies are built.
