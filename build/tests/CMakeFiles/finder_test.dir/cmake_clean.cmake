file(REMOVE_RECURSE
  "CMakeFiles/finder_test.dir/finder_test.cpp.o"
  "CMakeFiles/finder_test.dir/finder_test.cpp.o.d"
  "finder_test"
  "finder_test.pdb"
  "finder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
