# Empty dependencies file for scenes_property_test.
# This may be replaced when dependencies are built.
