file(REMOVE_RECURSE
  "CMakeFiles/scenes_property_test.dir/scenes_property_test.cpp.o"
  "CMakeFiles/scenes_property_test.dir/scenes_property_test.cpp.o.d"
  "scenes_property_test"
  "scenes_property_test.pdb"
  "scenes_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenes_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
