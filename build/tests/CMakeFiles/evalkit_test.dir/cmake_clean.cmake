file(REMOVE_RECURSE
  "CMakeFiles/evalkit_test.dir/evalkit_test.cpp.o"
  "CMakeFiles/evalkit_test.dir/evalkit_test.cpp.o.d"
  "evalkit_test"
  "evalkit_test.pdb"
  "evalkit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evalkit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
