# Empty dependencies file for evalkit_test.
# This may be replaced when dependencies are built.
