# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/jir_test[1]_include.cmake")
include("/root/repo/build/tests/jar_test[1]_include.cmake")
include("/root/repo/build/tests/cfg_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/cpg_test[1]_include.cmake")
include("/root/repo/build/tests/finder_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
include("/root/repo/build/tests/evalkit_test[1]_include.cmake")
include("/root/repo/build/tests/cypher_test[1]_include.cmake")
include("/root/repo/build/tests/payload_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
include("/root/repo/build/tests/ysoserial_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/planter_test[1]_include.cmake")
include("/root/repo/build/tests/scenes_property_test[1]_include.cmake")
