// The RQ4 workflow: build a CPG once, then iterate with ad-hoc queries —
// "security researchers can perform heuristic searches based on the results
// of previous queries" (§II-B). Uses the commons-collections component model
// and the Cypher-subset language.
//
// Run:  ./custom_query ["MATCH ... RETURN ..."]
#include <cstdio>

#include "corpus/components.hpp"
#include "pipeline/engine.hpp"

using namespace tabby;

int main(int argc, char** argv) {
  corpus::Component component = corpus::build_component("commons-collections(3.2.1)");
  jir::Program program = component.link();
  // "Build once, query many" IS the engine's shape: open the analysis one
  // time, keep the handle, iterate. (`tabby serve` does exactly this across
  // processes; here the session lives inside one.)
  pipeline::Engine engine;
  pipeline::ExecContext ctx;
  pipeline::AnalysisPtr analysis = engine.open(program, ctx);
  const cpg::CpgStats& stats = analysis->outcome().stats;
  std::printf("CPG for %s: %zu classes, %zu methods, %zu edges\n\n", component.name.c_str(),
              stats.class_nodes, stats.method_nodes, stats.relationship_edges);

  auto run = [&](const char* text) {
    std::printf("> %s\n", text);
    auto result = analysis->query(text, ctx);
    if (!result.ok()) {
      std::printf("  error: %s\n\n", result.error().to_string().c_str());
      return;
    }
    std::printf("%s\n", analysis->render(result.value()).c_str());
  };

  if (argc > 1) {
    run(argv[1]);
    return 0;
  }

  // A typical audit session, narrowing step by step.
  run("MATCH (m:Method {IS_SINK: true}) RETURN m.SIGNATURE, m.SINK_TYPE");
  run("MATCH (c:Class {IS_SERIALIZABLE: true})-[:HAS]->(m:Method {IS_SOURCE: true}) "
      "RETURN m.SIGNATURE LIMIT 8");
  run("MATCH (m:Method)-[:CALL]->(s:Method {IS_SINK: true}) RETURN m.SIGNATURE, s.NAME LIMIT 8");
  run("MATCH (m:Method)-[:CALL*1..4]->(s:Method {NAME: \"exec\"}) "
      "WHERE m.IS_SOURCE = true RETURN m.SIGNATURE LIMIT 5");
  run("MATCH p = (m:Method {IS_SOURCE: true})-[:CALL*1..6]->(s:Method {IS_SINK: true}) "
      "RETURN p LIMIT 3");
  return 0;
}
