// The URLDNS chain (paper Figure 3/4): builds the HashMap/URL model with the
// builder API, dumps the relevant CPG neighbourhood, finds the chain via the
// Trigger_Condition traversal, persists the graph, and re-verifies with the
// runtime VM.
//
// Run:  ./urldns [graph-store-path]
#include <cstdio>

#include "corpus/jdk.hpp"
#include "cpg/builder.hpp"
#include "cpg/schema.hpp"
#include "finder/finder.hpp"
#include "graph/serialize.hpp"
#include "jar/archive.hpp"
#include "jir/builder.hpp"
#include "runtime/objectgraph.hpp"
#include "runtime/vm.hpp"

using namespace tabby;

namespace {

jar::Archive urldns_jar() {
  jir::ProgramBuilder pb;

  auto url = pb.add_class("java.net.URL");
  url.serializable();
  url.field("host", "java.lang.String");
  url.field("handler", "java.net.URLStreamHandler");
  url.method("hashCode")
      .returns("int")
      .field_load("hd", "@this", "handler")
      .invoke_virtual("h", "hd", "java.net.URLStreamHandler", "hashCode", {"@this"})
      .ret("h");

  auto handler = pb.add_class("java.net.URLStreamHandler");
  handler.method("hashCode")
      .param("java.net.URL")
      .returns("int")
      .invoke_virtual("addr", "@this", "java.net.URLStreamHandler", "getHostAddress", {"@p1"})
      .const_int("h", 0)
      .ret("h");
  handler.method("getHostAddress")
      .param("java.net.URL")
      .returns("java.net.InetAddress")
      .field_load("host", "@p1", "host")
      .invoke_static("a", "java.net.InetAddress", "getByName", {"host"})
      .ret("a");

  jar::Archive archive;
  archive.meta.name = "urldns-gadget";
  archive.meta.version = "1.0";
  archive.classes = pb.build().classes();
  return archive;
}

}  // namespace

int main(int argc, char** argv) {
  // Link the gadget jar against the simulated JDK (which provides
  // java.util.HashMap with its readObject -> hash -> hashCode pivot).
  jir::Program program = jar::link({corpus::jdk_base_archive(), urldns_jar()});

  cpg::Cpg cpg = cpg::build_cpg(program);
  std::printf("URLDNS CPG: %zu classes, %zu methods, %zu edges\n", cpg.stats.class_nodes,
              cpg.stats.method_nodes, cpg.stats.relationship_edges);

  // Show the ALIAS neighbourhood of Object.hashCode (Figure 4's key edge).
  auto hits = cpg.db.find_nodes(std::string(cpg::kMethodLabel), std::string(cpg::kPropSignature),
                                graph::Value{std::string("java.lang.Object#hashCode/0")});
  if (!hits.empty()) {
    std::printf("\noverrides linked to java.lang.Object#hashCode/0 by ALIAS edges:\n");
    for (graph::EdgeId eid : cpg.db.in_edges_typed(hits[0], cpg::kAliasEdge)) {
      const graph::Node& n = cpg.db.node(cpg.db.edge(eid).from);
      std::printf("  %s\n", n.prop_string(std::string(cpg::kPropSignature)).c_str());
    }
  }

  finder::GadgetChainFinder finder(cpg.db);
  finder::FinderReport report = finder.find_all();
  std::printf("\n%zu gadget chain(s) found in %.3f s:\n\n", report.chains.size(),
              report.search_seconds);
  for (const finder::GadgetChain& chain : report.chains) {
    std::printf("%s\n", chain.to_string().c_str());
  }

  // Persist the CPG the way Tabby keeps its Neo4j store around for re-query.
  const char* path = argc > 1 ? argv[1] : "/tmp/urldns.tgdb";
  if (graph::save(cpg.db, path).ok()) {
    std::printf("graph store written to %s (reload with graph::load)\n\n", path);
  }

  // VM verification: HashMap{key = URL{host, handler}}.
  runtime::ObjectGraphSpec spec;
  spec.objects["map"] = runtime::ObjectSpec{"java.util.HashMap", {{"key", runtime::Ref{"url"}}}, {}};
  spec.objects["url"] = runtime::ObjectSpec{
      "java.net.URL",
      {{"host", std::string("x.attacker.example")}, {"handler", runtime::Ref{"h"}}},
      {}};
  spec.objects["h"] = runtime::ObjectSpec{"java.net.URLStreamHandler", {}, {}};
  spec.root = "map";

  jir::Hierarchy hierarchy(program);
  runtime::Interpreter vm(program, hierarchy);
  runtime::ExecutionResult result = vm.deserialize(runtime::instantiate(spec));
  std::printf("VM verification: DNS lookup %s\n",
              result.attack_succeeded("java.net.InetAddress#getByName/1") ? "TRIGGERED"
                                                                          : "not triggered");
  return result.attack_succeeded() ? 0 : 1;
}
