// Quickstart: the paper's Figure 1 example end to end.
//
// 1. Express EvilObjectA / EvilObjectB in textual JIR (the Jimple-like IR).
// 2. Build the Code Property Graph.
// 3. Find the gadget chain readObject -> toString -> Runtime.exec.
// 4. Verify it with the runtime VM (the automated PoC).
//
// Run:  ./quickstart
#include <cstdio>

#include "finder/finder.hpp"
#include "jir/builder.hpp"
#include "jir/parser.hpp"
#include "pipeline/engine.hpp"
#include "runtime/objectgraph.hpp"
#include "runtime/vm.hpp"

namespace {

constexpr const char* kFigure1 = R"(
// Figure 1 of the paper, in textual JIR.
class java.lang.Runtime {
  static method getRuntime() : java.lang.Runtime {
    r = new java.lang.Runtime;
    return r;
  }
  native method exec(java.lang.String) : java.lang.Process;
}

class demo.EvilObjectA implements java.io.Serializable {
  field java.lang.Object val1;
  method readObject(java.io.ObjectInputStream) : void {
    valObj = @this.val1;
    s = virtualinvoke valObj.<java.lang.Object#toString/0>();
    return;
  }
}

class demo.EvilObjectB implements java.io.Serializable {
  field java.lang.Object val2;
  method toString() : java.lang.String {
    v2 = @this.val2;
    cmd = virtualinvoke v2.<java.lang.Object#toString/0>();
    rt = staticinvoke <java.lang.Runtime#getRuntime/0>();
    p = virtualinvoke rt.<java.lang.Runtime#exec/1>(cmd);
    done = "done";
    return done;
  }
}
)";

}  // namespace

int main() {
  using namespace tabby;

  // Parse the textual IR and add the core JDK classes (Object, String, ...).
  auto parsed = jir::parse_program(kFigure1);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n", parsed.error().to_string().c_str());
    return 1;
  }
  jir::ProgramBuilder core;
  core.with_core_classes();
  jir::Program core_program = core.build();
  // Merge: quickest path is to re-add the parsed classes onto the core.
  for (const jir::ClassDecl& cls : parsed.value().classes()) core_program.add_class(cls);

  // Build the CPG (ORG + PCG + MAG, §III-B) through the session engine —
  // the supported embedding surface, and the same machinery `tabby serve`
  // keeps resident. One Engine per process, one Analysis per program.
  pipeline::Engine engine;
  pipeline::ExecContext ctx;
  pipeline::AnalysisPtr analysis = engine.open(core_program, ctx);
  const pipeline::Outcome& outcome = analysis->outcome();
  std::printf("CPG: %zu class nodes, %zu method nodes, %zu edges (%zu CALL, %zu ALIAS)\n",
              outcome.stats.class_nodes, outcome.stats.method_nodes,
              outcome.stats.relationship_edges, outcome.stats.call_edges,
              outcome.stats.alias_edges);
  std::printf("     %zu sources, %zu sinks, %zu uncontrollable call sites pruned\n\n",
              outcome.stats.source_methods, outcome.stats.sink_methods,
              outcome.stats.pruned_call_sites);

  // Find gadget chains (§III-D): Analysis::find carries the whole finder
  // orchestration (depth, deadlines, frozen/store dispatch) in one call.
  pipeline::FindResult found = analysis->find(ctx);
  std::printf("Found %zu gadget chain(s):\n\n", found.report.chains.size());
  for (const finder::GadgetChain& chain : found.report.chains) {
    std::printf("%s\n", chain.to_string().c_str());
  }

  // Verify with the deserialization VM: EvilObjectA{val1 = EvilObjectB{val2 = cmd}}.
  runtime::ObjectGraphSpec spec;
  spec.objects["a"] = runtime::ObjectSpec{"demo.EvilObjectA", {{"val1", runtime::Ref{"b"}}}, {}};
  spec.objects["b"] =
      runtime::ObjectSpec{"demo.EvilObjectB", {{"val2", std::string("open -a Calculator")}}, {}};
  spec.root = "a";

  jir::Hierarchy hierarchy(core_program);
  runtime::Interpreter vm(core_program, hierarchy);
  runtime::ExecutionResult result = vm.deserialize(runtime::instantiate(spec));
  std::printf("VM verification: attack %s (%zu sink hit(s), %zu steps)\n",
              result.attack_succeeded() ? "SUCCEEDED" : "failed", result.sink_hits.size(),
              result.steps);
  if (!result.sink_hits.empty()) {
    std::printf("observed call stack:\n");
    for (const std::string& frame : result.sink_hits[0].call_stack) {
      std::printf("  %s\n", frame.c_str());
    }
  }
  return result.attack_succeeded() ? 0 : 1;
}
