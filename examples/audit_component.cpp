// Full audit of one Table IX component: run Tabby and both baseline tools,
// classify every reported chain against the planted ground truth, and verify
// the ground truth in the runtime VM — one row of the paper's comparison,
// reproduced end to end.
//
// Run:  ./audit_component ["commons-collections(3.2.1)"]
#include <cstdio>

#include "corpus/components.hpp"
#include "evalkit/evalkit.hpp"
#include "pipeline/engine.hpp"
#include "util/strings.hpp"

using namespace tabby;

int main(int argc, char** argv) {
  std::string name = argc > 1 ? argv[1] : "commons-collections(3.2.1)";
  corpus::Component component;
  try {
    component = corpus::build_component(name);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\navailable components:\n", e.what());
    for (const std::string& n : corpus::component_names()) {
      std::fprintf(stderr, "  %s\n", n.c_str());
    }
    return 1;
  }

  std::printf("component: %s\n", component.name.c_str());
  std::printf("  planted ground truth: %zu real chain(s) (%zu known in dataset), %zu fake "
              "structure(s)\n\n",
              component.truths.size(), component.known_in_dataset(), component.fakes.size());

  jir::Program program = component.link();
  std::printf("linked program: %zu classes, %zu methods\n", program.class_count(),
              program.method_count());

  // Tabby's own view of the component, through the session engine (the
  // supported embedding surface; pipeline::run remains as the one-shot
  // compatibility wrapper).
  pipeline::Engine engine;
  pipeline::AnalysisPtr analysis = engine.open(program);
  const cpg::CpgStats& stats = analysis->outcome().stats;
  std::printf("CPG: %zu classes, %zu methods, %zu edges, %zu sinks, %zu call sites pruned\n\n",
              stats.class_nodes, stats.method_nodes, stats.relationship_edges,
              stats.sink_methods, stats.pruned_call_sites);

  for (evalkit::Tool tool : {evalkit::Tool::GadgetInspector, evalkit::Tool::Tabby,
                             evalkit::Tool::Serianalyzer}) {
    evalkit::ToolRun run = evalkit::run_tool(tool, program);
    evalkit::Classification c = evalkit::classify(run.chains, component.truths);
    std::printf("%-16s result=%zu fake=%zu known=%zu unknown=%zu  FPR=%s%%  FNR=%s%%  (%.2fs)%s\n",
                std::string(evalkit::tool_name(tool)).c_str(), c.result, c.fake, c.known,
                c.unknown, util::format_double(evalkit::fpr_percent(c), 1).c_str(),
                util::format_double(evalkit::fnr_percent(c, component.known_in_dataset()), 1)
                    .c_str(),
                run.seconds, run.exploded ? "  [X: did not terminate]" : "");
    if (tool == evalkit::Tool::Tabby) {
      for (const finder::GadgetChain& chain : run.chains) {
        std::printf("\n%s", chain.to_string().c_str());
      }
      std::printf("\n");
    }
  }

  evalkit::VerificationOutcome outcome =
      evalkit::verify_ground_truth(program, component.truths, component.fakes);
  std::printf("\nVM ground-truth verification: %zu/%zu real chains fired, %zu/%zu fakes "
              "refuted%s\n",
              outcome.truths_effective, outcome.truths_checked, outcome.fakes_refuted,
              outcome.fakes_checked, outcome.all_good() ? "  [OK]" : "  [MISMATCH]");
  for (const std::string& failure : outcome.failures) {
    std::printf("  !! %s\n", failure.c_str());
  }
  return outcome.all_good() ? 0 : 1;
}
