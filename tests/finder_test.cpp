// Tests for gadget-chain finding (§III-D): the URLDNS chain end to end, the
// Figure 1 EvilObject chain, Trigger_Condition rejection, alias dead-ends
// (EnumMap), depth limits, and the Figure 6 exclusion example.
#include <gtest/gtest.h>

#include <chrono>

#include "cpg/builder.hpp"
#include "cpg/schema.hpp"
#include "finder/finder.hpp"
#include "fixtures.hpp"

namespace tabby::finder {
namespace {

using graph::NodeId;
using graph::Value;

NodeId node_by_signature(const graph::GraphDb& db, const std::string& sig) {
  auto hits = db.find_nodes(std::string(cpg::kMethodLabel), std::string(cpg::kPropSignature),
                            Value{sig});
  EXPECT_EQ(hits.size(), 1u) << sig;
  return hits.empty() ? graph::kNoNode : hits[0];
}

TEST(Finder, FindsTheUrldnsChain) {
  jir::Program p = testing::urldns_program();
  cpg::Cpg cpg = cpg::build_cpg(p);
  GadgetChainFinder finder(cpg.db);
  FinderReport report = finder.find_all();

  ASSERT_EQ(report.chains.size(), 1u);
  const GadgetChain& chain = report.chains[0];
  EXPECT_EQ(chain.source_signature(), "java.util.HashMap#readObject/1");
  EXPECT_EQ(chain.sink_signature(), "java.net.InetAddress#getByName/1");
  EXPECT_EQ(chain.sink_type, "SSRF");

  // Exact method-call stack from Figure 3, alias hop included.
  std::vector<std::string> expected{
      "java.util.HashMap#readObject/1",  "java.util.HashMap#hash/1",
      "java.lang.Object#hashCode/0",     "java.net.URL#hashCode/0",
      "java.net.URLStreamHandler#hashCode/1",
      "java.net.URLStreamHandler#getHostAddress/1",
      "java.net.InetAddress#getByName/1"};
  EXPECT_EQ(chain.signatures, expected);
  EXPECT_FALSE(report.budget_exhausted);
  EXPECT_GT(report.sinks_considered, 0u);
}

TEST(Finder, EnumMapDeadEndProducesNoExtraChain) {
  // Searching upwards from the sink never touches EnumMap.entryHashCode:
  // the paper's motivation for sink-to-source search.
  jir::Program p = testing::urldns_program();
  cpg::Cpg cpg = cpg::build_cpg(p);
  GadgetChainFinder finder(cpg.db);
  for (const GadgetChain& chain : finder.find_all().chains) {
    for (const std::string& sig : chain.signatures) {
      EXPECT_EQ(sig.find("EnumMap"), std::string::npos);
    }
  }
}

TEST(Finder, FindsEvilObjectChain) {
  jir::Program p = testing::evil_object_program();
  cpg::Cpg cpg = cpg::build_cpg(p);
  GadgetChainFinder finder(cpg.db);
  FinderReport report = finder.find_all();

  ASSERT_GE(report.chains.size(), 1u);
  bool found = false;
  for (const GadgetChain& chain : report.chains) {
    if (chain.source_signature() == "demo.EvilObjectA#readObject/1" &&
        chain.sink_signature() == "java.lang.Runtime#exec/1") {
      found = true;
      EXPECT_EQ(chain.sink_type, "EXEC");
    }
  }
  EXPECT_TRUE(found);
}

TEST(Finder, ChainToStringShowsSourceAndSink) {
  jir::Program p = testing::urldns_program();
  cpg::Cpg cpg = cpg::build_cpg(p);
  GadgetChainFinder finder(cpg.db);
  auto chains = finder.find_all().chains;
  ASSERT_FALSE(chains.empty());
  std::string text = chains[0].to_string();
  EXPECT_NE(text.find("(source)java.util.HashMap#readObject/1"), std::string::npos);
  EXPECT_NE(text.find("(sink)  java.net.InetAddress#getByName/1"), std::string::npos);
}

TEST(Finder, DepthLimitCutsLongChains) {
  jir::Program p = testing::urldns_program();
  cpg::Cpg cpg = cpg::build_cpg(p);
  FinderOptions options;
  options.max_depth = 3;  // the URLDNS chain needs 6 hops
  GadgetChainFinder finder(cpg.db, options);
  EXPECT_TRUE(finder.find_all().chains.empty());

  options.max_depth = 6;
  GadgetChainFinder wider(cpg.db, options);
  EXPECT_EQ(wider.find_all().chains.size(), 1u);
}

TEST(Finder, WithoutAliasEdgesPolymorphicChainIsLost) {
  jir::Program p = testing::urldns_program();
  cpg::Cpg cpg = cpg::build_cpg(p);
  FinderOptions options;
  options.use_alias_edges = false;
  GadgetChainFinder finder(cpg.db, options);
  EXPECT_TRUE(finder.find_all().chains.empty());
}

TEST(Finder, TriggerConditionRejectsUncontrollableArgument) {
  // A "chain" whose sink argument is a constant must be rejected by the
  // Expander (one of its TC entries maps to ∞).
  jir::ProgramBuilder pb;
  pb.with_core_classes();
  auto runtime = pb.add_class("java.lang.Runtime");
  runtime.method("exec").param("java.lang.String").returns("void").set_native();
  auto cls = pb.add_class("demo.Fixed");
  cls.serializable();
  cls.method("readObject")
      .param("java.io.ObjectInputStream")
      .returns("void")
      .const_str("cmd", "echo fixed")
      .new_object("rt", "java.lang.Runtime")
      .invoke_virtual("", "rt", "java.lang.Runtime", "exec", {"cmd"})
      .ret();
  jir::Program p = pb.build();

  // Keep the raw MCG so the CALL edge itself survives; the finder's TC
  // check must still reject it.
  cpg::CpgOptions options;
  options.prune_uncontrollable_calls = false;
  cpg::Cpg cpg = cpg::build_cpg(p, options);
  GadgetChainFinder finder(cpg.db);
  EXPECT_TRUE(finder.find_all().chains.empty());

  // Sanity: with TC checking disabled the path is "found" (a false
  // positive) — the Serianalyzer failure mode.
  FinderOptions loose;
  loose.check_trigger_conditions = false;
  GadgetChainFinder sloppy(cpg.db, loose);
  EXPECT_EQ(sloppy.find_all().chains.size(), 1u);
}

TEST(Finder, CustomSourcePredicate) {
  jir::Program p = testing::urldns_program();
  cpg::Cpg cpg = cpg::build_cpg(p);
  NodeId sink = node_by_signature(cpg.db, "java.net.InetAddress#getByName/1");
  GadgetChainFinder finder(cpg.db);
  // RQ4 workflow: ask for chains ending anywhere in URL instead.
  auto chains = finder.find_from_sink(sink, [](const graph::Node& n) {
    return n.prop_string(std::string(cpg::kPropClassName)) == "java.net.URL";
  });
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_EQ(chains[0].source_signature(), "java.net.URL#hashCode/0");
}

TEST(Finder, DeduplicatesIdenticalChains) {
  jir::Program p = testing::urldns_program();
  cpg::Cpg cpg = cpg::build_cpg(p);
  GadgetChainFinder finder(cpg.db);
  auto report = finder.find_all();
  std::set<std::string> keys;
  for (const GadgetChain& c : report.chains) keys.insert(c.key());
  EXPECT_EQ(keys.size(), report.chains.size());
}

// --- Figure 6: the expander/evaluator exclusion example ----------------------
//
// Method nodes A (sink) .. J. The paper excludes E and I via the Expander
// (uncontrollable TC) and G via the Evaluator (depth). We rebuild the shape:
//   I -CALL-> C1 -ALIAS-> C -CALL-> A   where I's call makes TC ∞ (excluded)
//   H (source) -CALL-> C2 -ALIAS-> C -CALL-> A  (accepted)
//   G: a source so deep the depth bound excludes it.
TEST(Figure6, ExpanderAndEvaluatorExclusions) {
  graph::GraphDb db;
  auto method = [&](const std::string& name, bool source, bool sink) {
    graph::PropertyMap props;
    props[std::string(cpg::kPropName)] = name;
    props[std::string(cpg::kPropClassName)] = std::string("fig6");
    props[std::string(cpg::kPropSignature)] = "fig6#" + name + "/0";
    props[std::string(cpg::kPropIsSource)] = source;
    props[std::string(cpg::kPropIsSink)] = sink;
    if (sink) {
      props[std::string(cpg::kPropTriggerCondition)] = std::vector<std::int64_t>{1};
    }
    return db.add_node(std::string(cpg::kMethodLabel), props);
  };
  auto call = [&](NodeId from, NodeId to, std::vector<std::int64_t> pp) {
    graph::PropertyMap props;
    props[std::string(cpg::kPropPollutedPosition)] = std::move(pp);
    db.add_edge(from, to, std::string(cpg::kCallEdge), props);
  };

  constexpr std::int64_t kInf = 1'000'000'000;
  NodeId a = method("A", false, true);
  NodeId c = method("C", false, false);
  NodeId c1 = method("C1", false, false);
  NodeId c2 = method("C2", false, false);
  NodeId i = method("I", false, false);   // excluded by Expander
  NodeId h = method("H", true, false);    // the real source
  NodeId g1 = method("G1", false, false);
  NodeId g = method("G", true, false);    // excluded by Evaluator (too deep)

  call(c, a, {0, 1});                 // C calls sink A with controllable arg
  db.add_edge(c1, c, std::string(cpg::kAliasEdge));
  db.add_edge(c2, c, std::string(cpg::kAliasEdge));
  call(i, c1, {0, kInf});             // I's argument is uncontrollable
  call(h, c2, {0, 1});                // H's argument is controllable
  call(g1, c2, {0, 1});               // long detour to G
  call(g, g1, {0, 1});

  db.create_index(std::string(cpg::kMethodLabel), std::string(cpg::kPropIsSink));

  FinderOptions options;
  // The paper's plugin walks ALIAS edges in both directions (C -> C1).
  options.alias_bidirectional = true;
  options.max_depth = 3;  // path H -> C2 -> C -> A fits; G's detour does not
  GadgetChainFinder finder(db, options);
  auto report = finder.find_all();
  ASSERT_EQ(report.chains.size(), 1u);
  EXPECT_EQ(report.chains[0].signatures.front(), "fig6#H/0");
  // Raising the depth admits G as well.
  options.max_depth = 6;
  GadgetChainFinder deeper(db, options);
  EXPECT_EQ(deeper.find_all().chains.size(), 2u);
  // Default (forward-only alias) finds neither: the CALL edges here target
  // the subclass declarations C1/C2 directly.
  FinderOptions forward_only;
  GadgetChainFinder strict(db, forward_only);
  EXPECT_TRUE(strict.find_all().chains.empty());
}

TEST(Finder, ExpiredDeadlineMarksEverySinkPartial) {
  jir::Program p = testing::urldns_program();
  cpg::Cpg cpg = cpg::build_cpg(p);
  FinderOptions options;
  options.deadline = util::Deadline::after(std::chrono::milliseconds{0});
  GadgetChainFinder finder(cpg.db, options);
  FinderReport report = finder.find_all();
  EXPECT_TRUE(report.partial());
  EXPECT_EQ(report.partial_sinks.size(), report.sinks_considered);
  EXPECT_TRUE(report.chains.empty());  // nothing expanded, nothing invented
  for (const PartialSink& sink : report.partial_sinks) {
    EXPECT_FALSE(sink.signature.empty());
  }
}

TEST(Finder, GenerousDeadlineLeavesTheReportIdentical) {
  jir::Program p = testing::urldns_program();
  cpg::Cpg cpg = cpg::build_cpg(p);
  FinderOptions bounded;
  bounded.deadline = util::Deadline::after(std::chrono::hours{1});
  FinderReport with = GadgetChainFinder(cpg.db, bounded).find_all();
  FinderReport without = GadgetChainFinder(cpg.db).find_all();
  EXPECT_FALSE(with.partial());
  ASSERT_EQ(with.chains.size(), without.chains.size());
  for (std::size_t i = 0; i < with.chains.size(); ++i) {
    EXPECT_EQ(with.chains[i].signatures, without.chains[i].signatures);
  }
}

TEST(Finder, CancelTokenCutsTheSearchShort) {
  jir::Program p = testing::urldns_program();
  cpg::Cpg cpg = cpg::build_cpg(p);
  util::CancelToken token;
  token.cancel();
  FinderOptions options;
  options.deadline.bind(&token);
  FinderReport report = GadgetChainFinder(cpg.db, options).find_all();
  EXPECT_TRUE(report.partial());
}

}  // namespace
}  // namespace tabby::finder
