// Chaos harness: sweeps every compiled-in failpoint site (util/failpoint),
// injecting faults into cold and warm cache-backed CLI runs, and asserts the
// fail-soft contract from docs/ROBUSTNESS.md:
//   - the process never crashes: every run returns a structured exit code
//     from the documented taxonomy (0 clean / 1 fatal / 3 degraded);
//   - fatal runs name their error, degraded runs itemize their losses;
//   - any chain reported under injection also exists in the clean report
//     (faults can only remove answers, never invent them).
// Also exercises the cache publish retry-with-backoff satellite through the
// cache.publish.rename site.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/cli.hpp"
#include "corpus/components.hpp"
#include "jar/archive.hpp"
#include "serve/serve.hpp"
#include "util/failpoint.hpp"

namespace tabby {
namespace {

namespace fs = std::filesystem;

struct CliRun {
  int code = 0;
  std::string out;
  std::string err;
};

CliRun run_cli_capture(std::vector<std::string> args) {
  std::ostringstream out, err;
  CliRun result;
  result.code = cli::run_cli(args, out, err);
  result.out = out.str();
  result.err = err.str();
  return result;
}

class ChaosFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    util::failpoint::disarm();
    dir_ = fs::temp_directory_path() / ("tabby_chaos_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
    jar_path_ = (dir_ / "component.tjar").string();
    ASSERT_TRUE(
        jar::write_archive_file(corpus::build_component("BeanShell1").jar, jar_path_).ok());
    // A second archive so a single-shot fault on one unit leaves survivors
    // (degradation, exit 3) instead of emptying the whole classpath (exit 1).
    jar2_path_ = (dir_ / "component2.tjar").string();
    ASSERT_TRUE(jar::write_archive_file(corpus::build_component("Rome").jar, jar2_path_).ok());
  }
  void TearDown() override {
    util::failpoint::disarm();
    fs::remove_all(dir_);
  }

  std::string fresh_cache(const std::string& tag) {
    return (dir_ / ("cache_" + tag)).string();
  }

  fs::path dir_;
  std::string jar_path_;
  std::string jar2_path_;
};

/// The signature lines (one per chain node) of a find report, in order —
/// the timing- and cache-line-insensitive projection of the output.
std::string chain_lines(const std::string& out) {
  std::istringstream lines(out);
  std::string line, chains;
  while (std::getline(lines, line)) {
    if (line.find('#') == std::string::npos) continue;
    chains += line;
    chains += '\n';
  }
  return chains;
}

/// Every signature line of `run` must exist verbatim in the clean report.
void expect_chains_subset(const CliRun& run, const CliRun& clean, const std::string& label) {
  std::istringstream lines(run.out);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find('#') == std::string::npos) continue;
    EXPECT_NE(clean.out.find(line), std::string::npos) << label << ": invented chain line " << line;
  }
}

TEST_F(ChaosFixture, SweepEverySiteNeverCrashesAndStaysStructured) {
  CliRun clean = run_cli_capture({"find", jar_path_, jar2_path_});
  ASSERT_EQ(clean.code, 0) << clean.err;
  ASSERT_NE(clean.out.find("gadget chain"), std::string::npos);

  std::set<std::string> sites_that_fired;
  int tag = 0;
  for (const std::string& site : util::failpoint::catalog()) {
    // times=1: one transient fault, the run should usually recover around
    // it. times=-1: the fault is permanent for the whole run.
    for (int times : {1, -1}) {
      util::failpoint::disarm();
      util::failpoint::arm();
      util::failpoint::activate(site, times);
      std::string cache = fresh_cache(std::to_string(tag++));
      std::string label = site + (times < 0 ? " (always)" : " (once)");

      // Cold then warm, both under injection and with 2 workers so the
      // pool.task site is on the path.
      CliRun cold =
          run_cli_capture({"find", jar_path_, jar2_path_, "--cache", cache, "--jobs", "2"});
      CliRun warm =
          run_cli_capture({"find", jar_path_, jar2_path_, "--cache", cache, "--jobs", "2"});
      if (util::failpoint::fired(site) > 0) sites_that_fired.insert(site);
      util::failpoint::disarm();

      for (const CliRun* run : {&cold, &warm}) {
        EXPECT_TRUE(run->code == 0 || run->code == 1 || run->code == 3)
            << label << ": unstructured exit " << run->code << "\n" << run->err;
        if (run->code == 1) {
          EXPECT_NE(run->err.find("error:"), std::string::npos) << label << "\n" << run->err;
        }
        if (run->code == 3) {
          EXPECT_NE(run->err.find("degraded:"), std::string::npos) << label << "\n" << run->err;
        }
        expect_chains_subset(*run, clean, label);
      }

      // Whatever the injection did to the cache, a clean run afterwards
      // must produce the clean answer again (corrupt or missing cache
      // entries self-heal as misses).
      CliRun recovered =
          run_cli_capture({"find", jar_path_, jar2_path_, "--cache", cache, "--jobs", "2"});
      EXPECT_EQ(recovered.code, 0) << label << ": no recovery\n" << recovered.err;
      EXPECT_EQ(chain_lines(recovered.out), chain_lines(clean.out)) << label;
    }
  }
  // The sweep must have actually exercised the harness: most sites sit on
  // this workload's path (cache publish, fs reads, archive decode, worker
  // tasks, snapshot/graph decode).
  EXPECT_GE(sites_that_fired.size(), 5u) << "sweep barely fired any site";
}

TEST_F(ChaosFixture, QueryWorkloadSweepStaysStructured) {
  // The query workload reaches two sites the find sweep does not sit on the
  // far side of: cypher.eval (the evaluator entry) and graph.index.rebuild
  // (index creation for the freshly built CPG).
  const std::string query = "MATCH (m:Method {IS_SINK: true}) RETURN m.SIGNATURE";
  CliRun clean = run_cli_capture({"query", jar_path_, query});
  ASSERT_EQ(clean.code, 0) << clean.err;
  ASSERT_NE(clean.out.find("row(s)"), std::string::npos);

  std::set<std::string> sites_that_fired;
  for (const std::string& site : util::failpoint::catalog()) {
    util::failpoint::disarm();
    util::failpoint::arm();
    util::failpoint::activate(site);  // permanent for the whole run
    CliRun r = run_cli_capture({"query", jar_path_, query, "--jobs", "2"});
    if (util::failpoint::fired(site) > 0) sites_that_fired.insert(site);
    util::failpoint::disarm();

    EXPECT_TRUE(r.code == 0 || r.code == 1 || r.code == 3)
        << site << ": unstructured exit " << r.code << "\n" << r.err;
    if (r.code == 1) {
      EXPECT_TRUE(r.err.find("error:") != std::string::npos ||
                  r.err.find("query error:") != std::string::npos)
          << site << "\n" << r.err;
    }
    if (site == "cypher.plan") {
      // A planner fault is strictly weaker than an evaluator fault: it must
      // degrade to naive evaluation — same rows, clean exit — never an error
      // and never a different answer.
      EXPECT_EQ(r.code, 0) << "cypher.plan fault did not degrade to naive\n" << r.err;
      EXPECT_EQ(r.out, clean.out) << "cypher.plan fault changed the answer";
    }
  }
  EXPECT_TRUE(sites_that_fired.count("cypher.eval") == 1) << "cypher.eval never fired";
  EXPECT_TRUE(sites_that_fired.count("cypher.plan") == 1) << "cypher.plan never fired";
  EXPECT_TRUE(sites_that_fired.count("graph.index.rebuild") == 1)
      << "graph.index.rebuild never fired";

  // Injection over: the same query answers cleanly again.
  CliRun recovered = run_cli_capture({"query", jar_path_, query});
  EXPECT_EQ(recovered.code, 0) << recovered.err;
  EXPECT_EQ(recovered.out, clean.out);
}

TEST_F(ChaosFixture, VerifySweepOverRuntimeSitesStaysStructured) {
  // The verify post-pass adds three sites (runtime.step inside the VM,
  // runtime.verify.crash / runtime.verify.hang around the shards). Under any
  // of them the run must stay structured: exit 0 (absorbed) or 3 (chains
  // demoted to UNCONFIRMED, itemized on stderr) — never a crash, and never
  // an invented or silently dropped chain.
  CliRun clean = run_cli_capture({"find", jar_path_, "--verify"});
  ASSERT_EQ(clean.code, 0) << clean.err;
  ASSERT_NE(clean.out.find("chains confirmed effective"), std::string::npos) << clean.out;

  struct Case {
    const char* site;
    int times;
    const char* workers;  // nullptr = in-process
  };
  // Permanent hang chaos under --verify-workers is excluded on wall-clock
  // grounds only: every dispatch would ride out the full production hang
  // timeout (the absorbed single-hang case below already proves the path).
  const Case cases[] = {
      {"runtime.step", 1, nullptr},          {"runtime.step", -1, nullptr},
      {"runtime.step", 1, "2"},              {"runtime.verify.crash", 1, nullptr},
      {"runtime.verify.crash", -1, nullptr}, {"runtime.verify.crash", 1, "2"},
      {"runtime.verify.crash", -1, "2"},     {"runtime.verify.hang", 1, nullptr},
      {"runtime.verify.hang", -1, nullptr},  {"runtime.verify.hang", 1, "2"},
  };
  for (const Case& c : cases) {
    std::string label = std::string(c.site) + (c.times < 0 ? " (always)" : " (once)") +
                        (c.workers != nullptr ? " workers=2" : "");
    util::failpoint::disarm();
    util::failpoint::arm();
    util::failpoint::activate(c.site, c.times);
    std::vector<std::string> args{"find", jar_path_, "--verify"};
    if (c.workers != nullptr) {
      args.push_back("--verify-workers");
      args.push_back(c.workers);
    }
    CliRun r = run_cli_capture(args);
    // runtime.step under --verify-workers fires inside the forked verifier,
    // where the child's counter is invisible to this process.
    if (c.workers == nullptr || std::string(c.site) != "runtime.step") {
      EXPECT_GT(util::failpoint::fired(c.site), 0u) << label << ": site never fired";
    }
    util::failpoint::disarm();

    EXPECT_TRUE(r.code == 0 || r.code == 3)
        << label << ": unstructured exit " << r.code << "\n" << r.err;
    if (r.code == 3) {
      EXPECT_NE(r.err.find("degraded: [verify-"), std::string::npos) << label << "\n" << r.err;
      EXPECT_NE(r.out.find("unconfirmed"), std::string::npos) << label << "\n" << r.out;
    }
    expect_chains_subset(r, clean, label);
    // UNCONFIRMED demotion keeps the chain: same chain lines as clean.
    EXPECT_EQ(chain_lines(r.out), chain_lines(clean.out)) << label;
  }

  // Injection over: the next run confirms the effective chain again.
  CliRun recovered = run_cli_capture({"find", jar_path_, "--verify"});
  EXPECT_EQ(recovered.code, 0) << recovered.err;
  EXPECT_EQ(chain_lines(recovered.out), chain_lines(clean.out));
  EXPECT_NE(recovered.out.find("chains confirmed effective"), std::string::npos);
}

TEST_F(ChaosFixture, TransientPublishFaultsAreRetriedToSuccess) {
  util::failpoint::arm();
  // Two failed rename attempts out of the three the retry loop allows: the
  // publish must still land, and the cache must warm-start next run.
  util::failpoint::activate("cache.publish.rename", 2);
  std::string cache = fresh_cache("retry");
  CliRun cold = run_cli_capture({"analyze", jar_path_, "--cache", cache});
  EXPECT_EQ(util::failpoint::fired("cache.publish.rename"), 2u);
  util::failpoint::disarm();
  EXPECT_EQ(cold.code, 0) << cold.err;
  EXPECT_EQ(cold.err.find("warning:"), std::string::npos) << cold.err;

  CliRun warm = run_cli_capture({"analyze", jar_path_, "--cache", cache});
  EXPECT_EQ(warm.code, 0);
  EXPECT_NE(warm.out.find("snapshot hit"), std::string::npos) << warm.out;
}

TEST_F(ChaosFixture, ExhaustedPublishRetriesDegradeToAWarning) {
  util::failpoint::arm();
  util::failpoint::activate("cache.publish.rename");  // every attempt fails
  std::string cache = fresh_cache("exhausted");
  CliRun cold = run_cli_capture({"analyze", jar_path_, "--cache", cache});
  util::failpoint::disarm();
  // Publishing is best-effort: the analysis itself is clean.
  EXPECT_EQ(cold.code, 0) << cold.err;
  EXPECT_NE(cold.err.find("warning:"), std::string::npos) << cold.err;

  // Nothing was published, so the next (clean) run is a cold miss that
  // rebuilds and publishes normally.
  CliRun rebuilt = run_cli_capture({"analyze", jar_path_, "--cache", cache});
  EXPECT_EQ(rebuilt.code, 0);
  EXPECT_NE(rebuilt.out.find("snapshot miss"), std::string::npos) << rebuilt.out;
}

TEST_F(ChaosFixture, WorkerTaskFaultIsAStructuredFatalNotACrash) {
  util::failpoint::arm();
  util::failpoint::activate("pool.task");
  CliRun r = run_cli_capture({"find", jar_path_, "--jobs", "2"});
  util::failpoint::disarm();
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("error:"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("failpoint"), std::string::npos) << r.err;
}

TEST_F(ChaosFixture, ServeRequestFaultIsContainedToOneRequest) {
  // The daemon-side site: with serve.request active, every request fails as
  // a structured internal error — the daemon itself must never die, and must
  // answer cleanly the moment the injection stops.
  std::string socket = "/tmp/tchaos_" + std::to_string(::getpid());
  std::ostringstream daemon_out, daemon_err;
  int daemon_code = -1;
  std::thread daemon([&] {
    daemon_code = cli::run_cli({"serve", socket}, daemon_out, daemon_err);
  });

  util::failpoint::arm();
  util::failpoint::activate("serve.request");  // permanent while armed
  for (int attempt = 0; attempt < 3; ++attempt) {
    auto reply = serve::client_request(socket, "{\"op\":\"stats\"}");
    ASSERT_TRUE(reply.ok()) << reply.error().to_string();
    EXPECT_NE(reply.value().find("\"ok\":false"), std::string::npos) << reply.value();
    EXPECT_NE(reply.value().find("\"internal\""), std::string::npos) << reply.value();
  }
  EXPECT_GE(util::failpoint::fired("serve.request"), 3u);
  util::failpoint::disarm();

  // Injection over: the daemon answers real work on the very next request.
  auto clean = serve::client_request(socket, "{\"op\":\"find\",\"classpath\":[\"" + jar_path_ + "\"]}");
  ASSERT_TRUE(clean.ok()) << clean.error().to_string();
  EXPECT_NE(clean.value().find("\"ok\":true"), std::string::npos) << clean.value();
  EXPECT_NE(clean.value().find("gadget chain"), std::string::npos) << clean.value();

  auto shutdown = serve::client_request(socket, "{\"op\":\"shutdown\"}");
  EXPECT_TRUE(shutdown.ok());
  daemon.join();
  EXPECT_EQ(daemon_code, 0) << daemon_err.str();
}

}  // namespace
}  // namespace tabby
