// Parameterized end-to-end tests over the faithful ysoserial chain models:
// for every model, Tabby must report exactly the expected method-call stack,
// the shipped recipe must fire in the VM, and §V-C auto-verification must
// independently confirm the chain.
#include <gtest/gtest.h>

#include "corpus/jdk.hpp"
#include "corpus/ysoserial.hpp"
#include "cpg/builder.hpp"
#include "evalkit/evalkit.hpp"
#include "finder/finder.hpp"
#include "finder/payload.hpp"
#include "jir/validate.hpp"

namespace tabby::corpus {
namespace {

class YsoserialChain : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    model_ = build_ysoserial(GetParam());
    program_ = jar::link({jdk_base_archive(), model_.jar});
  }

  YsoserialModel model_;
  jir::Program program_;
};

TEST_P(YsoserialChain, ModelValidates) {
  auto issues = jir::validate(program_);
  EXPECT_TRUE(issues.empty()) << (issues.empty() ? "" : issues.front().to_string());
}

TEST_P(YsoserialChain, TabbyReportsTheExpectedCallStack) {
  cpg::Cpg cpg = cpg::build_cpg(program_);
  finder::GadgetChainFinder finder(cpg.db);
  finder::FinderReport report = finder.find_all();

  bool found = false;
  for (const finder::GadgetChain& chain : report.chains) {
    if (chain.signatures == model_.expected_chain) found = true;
  }
  std::string all;
  for (const auto& chain : report.chains) all += chain.to_string() + "\n";
  EXPECT_TRUE(found) << "expected chain not reported. Reported:\n" << all;
}

TEST_P(YsoserialChain, RecipeFiresInTheVm) {
  evalkit::VerificationOutcome outcome =
      evalkit::verify_ground_truth(program_, {model_.truth}, {});
  EXPECT_TRUE(outcome.all_good())
      << (outcome.failures.empty() ? "count mismatch" : outcome.failures[0]);
}

TEST_P(YsoserialChain, AutoVerifyConfirmsTheChain) {
  cpg::Cpg cpg = cpg::build_cpg(program_);
  finder::GadgetChainFinder finder(cpg.db);
  for (const finder::GadgetChain& chain : finder.find_all().chains) {
    if (chain.signatures != model_.expected_chain) continue;
    finder::AutoVerifyResult verdict = finder::auto_verify(program_, cpg.db, chain);
    EXPECT_TRUE(verdict.effective)
        << chain.to_string() << "notes: "
        << (verdict.payload.notes.empty() ? "" : verdict.payload.notes[0])
        << " fault: " << verdict.execution.fault;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, YsoserialChain, ::testing::ValuesIn(ysoserial_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

TEST(Ysoserial, UnknownNameThrows) {
  EXPECT_THROW(build_ysoserial("CommonsCollections99"), std::invalid_argument);
}

TEST(Ysoserial, Cc6AndCc5ShareTheFunctorCore) {
  YsoserialModel cc5 = build_ysoserial("CommonsCollections5");
  YsoserialModel cc6 = build_ysoserial("CommonsCollections6");
  auto has_class = [](const YsoserialModel& m, std::string_view name) {
    for (const auto& cls : m.jar.classes) {
      if (cls.name == name) return true;
    }
    return false;
  };
  for (const char* cls : {"org.apache.commons.collections.functors.InvokerTransformer",
                          "org.apache.commons.collections.functors.ChainedTransformer",
                          "org.apache.commons.collections.map.LazyMap"}) {
    EXPECT_TRUE(has_class(cc5, cls)) << cls;
    EXPECT_TRUE(has_class(cc6, cls)) << cls;
  }
}

TEST(Ysoserial, LazyMapCacheHitSuppressesTheChain) {
  // If cachedValue is pre-set, LazyMap.get never calls the factory: the
  // same structure, a different object graph, no attack. Demonstrates that
  // effectiveness is a property of the payload, not just the code.
  YsoserialModel cc6 = build_ysoserial("CommonsCollections6");
  jir::Program program = jar::link({jdk_base_archive(), cc6.jar});

  runtime::ObjectGraphSpec recipe = cc6.truth.recipe;
  recipe.objects.at("lazymap").fields["cachedValue"] = std::string("already-cached");

  jir::Hierarchy hierarchy(program);
  runtime::Interpreter vm(program, hierarchy);
  runtime::ExecutionResult result = vm.deserialize(runtime::instantiate(recipe));
  EXPECT_TRUE(result.completed) << result.fault;
  EXPECT_FALSE(result.attack_succeeded());
}

}  // namespace
}  // namespace tabby::corpus
