// Tests for the Cypher query planner (src/cypher/planner.hpp, docs/CYPHER.md):
// planner decision units (anchor flip on skewed cardinalities, predicate
// pushdown safety, LIMIT-aware prepass skipping, empty proofs), golden
// `--explain` renderings, the cardinality-stats layer (incremental GraphDb
// counts, store/frozen round trips, stats-less backward compatibility), and
// the CLI's --explain / --no-plan surface.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "cli/cli.hpp"
#include "cypher/ast.hpp"
#include "cypher/cypher.hpp"
#include "cypher/planner.hpp"
#include "graph/frozen.hpp"
#include "graph/graph.hpp"
#include "graph/serialize.hpp"
#include "support/random_graph.hpp"
#include "util/bytes.hpp"

namespace tabby::cypher {
namespace {

namespace fs = std::filesystem;
using graph::CardinalityStats;
using graph::GraphDb;
using graph::Value;

Query parse_or_die(std::string_view text) {
  auto q = parse_query(text);
  EXPECT_TRUE(q.ok()) << (q.ok() ? "" : q.error().to_string());
  return std::move(q.value());
}

/// Exact stats for a corpus-shaped population: many Methods, few Classes.
CardinalityStats skewed_stats() {
  CardinalityStats stats;
  stats.nodes = 1000;
  stats.edges = 3000;
  stats.labels = {{"Class", 4}, {"Method", 800}};
  stats.edge_types = {{"ALIAS", 200}, {"CALL", 2800}};
  return stats;
}

// --- Planner decision units -------------------------------------------------

TEST(CypherPlanner, FlipsStartToTheCheapEndOnSkewedCardinalities) {
  CardinalityStats stats = skewed_stats();
  StatsView view{1000, 3000, &stats};
  Plan plan = plan_query(parse_or_die("MATCH (a:Method)-[:CALL]->(b:Class) RETURN a"), view);
  EXPECT_EQ(plan.mode, Plan::Mode::Planned);
  EXPECT_TRUE(plan.reverse);
  EXPECT_EQ(plan.anchor, 1u);
  ASSERT_EQ(plan.estimates.size(), 2u);
  EXPECT_EQ(plan.estimates[0], 800u);
  EXPECT_EQ(plan.estimates[1], 4u);
  EXPECT_TRUE(plan.used_stats);
}

TEST(CypherPlanner, KeepsTheStartWhenItIsAlreadyCheapest) {
  CardinalityStats stats = skewed_stats();
  StatsView view{1000, 3000, &stats};
  Plan plan = plan_query(parse_or_die("MATCH (a:Class)-[:CALL]->(b:Method) RETURN a"), view);
  EXPECT_EQ(plan.mode, Plan::Mode::Naive);
  EXPECT_FALSE(plan.reverse);
  EXPECT_EQ(plan.anchor, 0u);
  EXPECT_EQ(plan.reason, "start is already the cheapest position");
}

TEST(CypherPlanner, DeclinesMarginalWins) {
  // est[1]=700 < est[0]=800 but not by the 2x margin the prepass must repay.
  CardinalityStats stats = skewed_stats();
  stats.labels.push_back({"Mid", 700});
  StatsView view{1000, 3000, &stats};
  Plan plan = plan_query(parse_or_die("MATCH (a:Method)-[:CALL]->(b:Mid) RETURN a"), view);
  EXPECT_EQ(plan.mode, Plan::Mode::Naive);
  EXPECT_FALSE(plan.reverse);
  EXPECT_EQ(plan.anchor, 1u);
  EXPECT_EQ(plan.reason, "no position is clearly cheaper than the start");
}

TEST(CypherPlanner, SmallLimitSkipsTheBackwardPrepass) {
  CardinalityStats stats = skewed_stats();
  StatsView view{1000, 3000, &stats};
  Plan small = plan_query(
      parse_or_die("MATCH (a:Method)-[:CALL]->(b:Class) RETURN a LIMIT 5"), view);
  EXPECT_FALSE(small.reverse);
  EXPECT_TRUE(small.limit_skip);
  EXPECT_EQ(small.mode, Plan::Mode::Naive);
  EXPECT_NE(small.reason.find("LIMIT 5"), std::string::npos);

  Plan large = plan_query(
      parse_or_die("MATCH (a:Method)-[:CALL]->(b:Class) RETURN a LIMIT 20"), view);
  EXPECT_TRUE(large.reverse);
  EXPECT_FALSE(large.limit_skip);
}

TEST(CypherPlanner, PushesSafeConditionsToTheirPatternNode) {
  CardinalityStats stats = skewed_stats();
  StatsView view{1000, 3000, &stats};
  Plan plan = plan_query(
      parse_or_die("MATCH (a:Method)-[:CALL]->(b:Class) WHERE b.NAME = \"x\" RETURN a"), view);
  EXPECT_TRUE(plan.has_pushdown());
  ASSERT_EQ(plan.pushed.size(), 2u);
  EXPECT_TRUE(plan.pushed[0].empty());
  ASSERT_EQ(plan.pushed[1].size(), 1u);
  EXPECT_EQ(plan.pushed[1][0], 0u);
  // The pushed Eq also shrinks the estimate: 4 / 8 -> floor of 1.
  EXPECT_EQ(plan.estimates[1], 1u);
}

TEST(CypherPlanner, RefusesPushdownOnRepeatedVariables) {
  // (a)-->(a): the last binding wins at emission, so checking the condition
  // at the first occurrence would prune rows the naive evaluator emits.
  CardinalityStats stats = skewed_stats();
  StatsView view{1000, 3000, &stats};
  Plan plan = plan_query(
      parse_or_die("MATCH (a:Method)-[:CALL]->(a) WHERE a.ORDER > 1 RETURN a"), view);
  EXPECT_FALSE(plan.has_pushdown());
}

TEST(CypherPlanner, RefusesInteriorPushdownWithTwoVariableSegments) {
  // bindings_from_path cannot place the interior var positionally when two
  // segments have elastic length, so the condition must wait for emission.
  CardinalityStats stats = skewed_stats();
  StatsView view{1000, 3000, &stats};
  Plan plan = plan_query(
      parse_or_die(
          "MATCH (a)-[*1..2]->(b:Class)-[*1..2]->(c) WHERE b.ORDER = 1 RETURN a"),
      view);
  EXPECT_FALSE(plan.has_pushdown());
  // ...but the same condition on the pattern *ends* is always safe.
  Plan ends = plan_query(
      parse_or_die(
          "MATCH (a)-[*1..2]->(b:Class)-[*1..2]->(c) WHERE a.ORDER = 1 RETURN a"),
      view);
  EXPECT_TRUE(ends.has_pushdown());
}

TEST(CypherPlanner, ProvesEmptinessFromWhereShape) {
  CardinalityStats stats = skewed_stats();
  StatsView view{1000, 3000, &stats};
  Plan unbound = plan_query(
      parse_or_die("MATCH (a:Method) WHERE zz.X = 1 RETURN a"), view);
  EXPECT_TRUE(unbound.always_empty);
  EXPECT_NE(unbound.empty_reason.find("'zz'"), std::string::npos);

  // A path variable binds a Path, never a Node, so conditions on it can
  // never hold either.
  Plan path = plan_query(
      parse_or_die("MATCH p = (a:Method)-[:CALL]->(b) WHERE p.X = 1 RETURN a"), view);
  EXPECT_TRUE(path.always_empty);
}

TEST(CypherPlanner, ProvesEmptinessFromAbsentLabels) {
  CardinalityStats stats = skewed_stats();
  StatsView view{1000, 3000, &stats};
  Plan plan = plan_query(parse_or_die("MATCH (a:Ghost) RETURN a"), view);
  EXPECT_TRUE(plan.always_empty);
  EXPECT_EQ(plan.empty_reason, "no node carries label 'Ghost'");

  // Fallback estimates carry no proof: absent stats must NOT imply absent
  // labels.
  StatsView fallback{1000, 3000, nullptr};
  Plan guess = plan_query(parse_or_die("MATCH (a:Ghost) RETURN a"), fallback);
  EXPECT_FALSE(guess.always_empty);
  EXPECT_FALSE(guess.used_stats);
  EXPECT_EQ(guess.estimates[0], 1000u / 8 + 1);
}

// --- Golden --explain renderings --------------------------------------------

/// 10 Methods chained by CALL, 2 Classes; exactly one CALL lands on a Class.
GraphDb skewed_graph() {
  GraphDb db;
  std::vector<graph::NodeId> methods;
  for (int i = 0; i < 10; ++i) {
    methods.push_back(db.add_node("Method", {{"NAME", Value{"m" + std::to_string(i)}}}));
  }
  auto c0 = db.add_node("Class", {{"NAME", Value{std::string("C0")}}});
  db.add_node("Class", {{"NAME", Value{std::string("C1")}}});
  for (int i = 0; i < 9; ++i) db.add_edge(methods[i], methods[i + 1], "CALL");
  db.add_edge(methods[9], c0, "CALL");
  return db;
}

TEST(CypherExplain, GoldenPlannedReversal) {
  GraphDb db = skewed_graph();
  auto result = run_query(db, "MATCH (a:Method)-[:CALL]->(b:Class) RETURN a.NAME");
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_EQ(result.value().plan,
            "plan: planned\n"
            "  stats: exact (2 pattern node(s))\n"
            "  estimates: n0(a:Method)=10 n1(b:Class)=2\n"
            "  anchor: node 1 (est 2) - backward reachability filter across 1 segment(s)\n");
  ASSERT_EQ(result.value().rows.size(), 1u);
  EXPECT_TRUE(graph::value_equals(result.value().rows[0][0].scalar, Value{std::string("m9")}));
}

TEST(CypherExplain, GoldenNaiveSingleNode) {
  GraphDb db = skewed_graph();
  auto result = run_query(db, "MATCH (a:Method) RETURN a.NAME");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().plan,
            "plan: naive\n"
            "  stats: exact (1 pattern node(s))\n"
            "  estimates: n0(a:Method)=10\n"
            "  reason: single-node pattern has nothing to reorder\n");
}

TEST(CypherExplain, GoldenPushdownLine) {
  GraphDb db = skewed_graph();
  auto result = run_query(
      db, "MATCH (a:Method)-[:CALL]->(b:Class) WHERE b.NAME = \"C0\" RETURN a.NAME");
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result.value().plan.find("  pushdown: b.NAME -> node 1\n"), std::string::npos);
  ASSERT_EQ(result.value().rows.size(), 1u);
}

TEST(CypherExplain, GoldenPlanningDisabled) {
  GraphDb db = skewed_graph();
  QueryOptions options;
  options.use_planner = false;
  auto result = run_query(db, "MATCH (a:Method) RETURN a.NAME", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().plan,
            "plan: naive\n"
            "  reason: planning disabled (--no-plan)\n");
}

TEST(CypherExplain, StatsLessFrozenFrameFallsBackToDefaults) {
  GraphDb db = skewed_graph();
  auto bare = graph::FrozenGraph::freeze(db, 0, nullptr, /*with_stats=*/false);
  ASSERT_TRUE(bare.ok());
  auto result = run_query(bare.value(), "MATCH (a:Method)-[:CALL]->(b:Class) RETURN a.NAME");
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result.value().plan.find("stats: fallback"), std::string::npos);
  // Fallback plans differently but answers identically.
  ASSERT_EQ(result.value().rows.size(), 1u);
}

// --- Cardinality stats layer ------------------------------------------------

TEST(CypherStats, GraphDbCardinalityTracksRemovalsExactly) {
  GraphDb db = testsupport::random_graph(7);  // has node and edge tombstones
  CardinalityStats stats = db.cardinality();
  EXPECT_EQ(stats.nodes, db.node_count());
  EXPECT_EQ(stats.edges, db.edge_count());
  std::uint64_t label_total = 0;
  for (const auto& [label, count] : stats.labels) {
    std::uint64_t manual = 0;
    for (graph::NodeId id = 0; id < db.node_capacity(); ++id) {
      if (db.node_alive(id) && db.node(id).label == label) ++manual;
    }
    EXPECT_EQ(count, manual) << label;
    label_total += count;
  }
  EXPECT_EQ(label_total, db.node_count());
  std::uint64_t type_total = 0;
  for (const auto& [type, count] : stats.edge_types) {
    std::uint64_t manual = 0;
    for (graph::EdgeId id = 0; id < db.edge_capacity(); ++id) {
      if (db.edge_alive(id) && db.edge(id).type == type) ++manual;
    }
    EXPECT_EQ(count, manual) << type;
    type_total += count;
  }
  EXPECT_EQ(type_total, db.edge_count());
}

TEST(CypherStats, StoreRoundTripsWithAndWithoutStats) {
  GraphDb db = testsupport::random_graph(3);
  std::vector<std::byte> with = graph::serialize(db);
  std::vector<std::byte> without = graph::serialize(db, /*with_stats=*/false);
  EXPECT_GT(with.size(), without.size());

  auto decoded = graph::deserialize(with);
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  EXPECT_TRUE(decoded.value().cardinality() == db.cardinality());

  // A stats-less store (anything written before the planner existed) still
  // loads; stats are simply recomputed from the live graph on demand.
  auto old = graph::deserialize(without);
  ASSERT_TRUE(old.ok()) << old.error().to_string();
  EXPECT_TRUE(old.value().cardinality() == db.cardinality());
}

TEST(CypherStats, CodecRejectsUnsortedNames) {
  CardinalityStats bad;
  bad.nodes = 3;
  bad.edges = 0;
  bad.labels = {{"b", 1}, {"a", 2}};  // decode requires strictly ascending
  util::ByteWriter w;
  graph::encode_stats(w, bad);
  util::ByteReader r(w.data());
  auto decoded = graph::decode_stats(r);
  EXPECT_FALSE(decoded.ok());
}

TEST(CypherStats, FrozenFrameCarriesStatsThroughAttach) {
  GraphDb db = testsupport::random_graph(5);
  auto frozen = graph::FrozenGraph::freeze(db);
  ASSERT_TRUE(frozen.ok());
  ASSERT_TRUE(frozen.value().stats().has_value());
  EXPECT_TRUE(*frozen.value().stats() == db.cardinality());

  // Round-trip the frame bytes: the re-attached graph sees the same stats.
  auto reattached = graph::FrozenGraph::from_bytes(frozen.value().frame());
  ASSERT_TRUE(reattached.ok()) << reattached.error().to_string();
  ASSERT_TRUE(reattached.value().stats().has_value());
  EXPECT_TRUE(*reattached.value().stats() == db.cardinality());

  // A pre-planner 16-section frame attaches with no stats.
  auto bare = graph::FrozenGraph::freeze(db, 0, nullptr, /*with_stats=*/false);
  ASSERT_TRUE(bare.ok());
  EXPECT_FALSE(bare.value().stats().has_value());
  auto bare_reattached = graph::FrozenGraph::from_bytes(bare.value().frame());
  ASSERT_TRUE(bare_reattached.ok()) << bare_reattached.error().to_string();
  EXPECT_FALSE(bare_reattached.value().stats().has_value());
}

// --- CLI surface -------------------------------------------------------------

struct CliRun {
  int code = 0;
  std::string out;
  std::string err;
};

CliRun run_cli_capture(std::vector<std::string> args) {
  std::ostringstream out, err;
  CliRun result;
  result.code = cli::run_cli(args, out, err);
  result.out = out.str();
  result.err = err.str();
  return result;
}

class CypherCliFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / ("tabby_cypher_plan_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
    store_ = (dir_ / "g.tsnp").string();
    ASSERT_TRUE(graph::save(skewed_graph(), store_).ok());
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
  std::string store_;
};

TEST_F(CypherCliFixture, ExplainPrintsThePlanBeforeTheRows) {
  CliRun r = run_cli_capture({"query", "--store", store_, "--explain",
                              "MATCH (a:Method)-[:CALL]->(b:Class) RETURN a.NAME"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_EQ(r.out.rfind("plan: planned\n", 0), 0u) << r.out;
  EXPECT_NE(r.out.find("anchor: node 1"), std::string::npos);
  EXPECT_NE(r.out.find("(1 row(s))"), std::string::npos);
}

TEST_F(CypherCliFixture, NoPlanIsAByteIdenticalEscapeHatch) {
  std::vector<std::string> base = {"query", "--store", store_,
                                   "MATCH (a:Method)-[:CALL*1..3]->(b) RETURN a.NAME, b.NAME"};
  CliRun planned = run_cli_capture(base);
  std::vector<std::string> naive_args = base;
  naive_args.insert(naive_args.begin() + 1, "--no-plan");
  CliRun naive = run_cli_capture(naive_args);
  EXPECT_EQ(planned.code, 0) << planned.err;
  EXPECT_EQ(naive.code, 0) << naive.err;
  EXPECT_EQ(planned.out, naive.out);
}

TEST_F(CypherCliFixture, ExplainWithNoPlanShowsTheDisabledReason) {
  CliRun r = run_cli_capture({"query", "--store", store_, "--explain", "--no-plan",
                              "MATCH (a:Method) RETURN a.NAME"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_EQ(r.out.rfind("plan: naive\n  reason: planning disabled (--no-plan)\n", 0), 0u)
      << r.out;
}

}  // namespace
}  // namespace tabby::cypher
