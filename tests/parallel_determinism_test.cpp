// The tentpole guarantee of the parallel pipeline: every stage produces
// BIT-IDENTICAL results at any job count. Serialized CPG bytes, finder
// reports, controllability summaries and validation reports are compared
// between the serial path (no executor) and a deliberately oversubscribed
// 8-worker pool across the ysoserial corpus and the Table X scenes.
#include <gtest/gtest.h>

#include <vector>

#include "analysis/controllability.hpp"
#include "cfg/cfg.hpp"
#include "corpus/jdk.hpp"
#include "corpus/scenes.hpp"
#include "corpus/ysoserial.hpp"
#include "cpg/builder.hpp"
#include "finder/finder.hpp"
#include "graph/serialize.hpp"
#include "jar/archive.hpp"
#include "jir/hierarchy.hpp"
#include "jir/validate.hpp"
#include "util/thread_pool.hpp"

namespace tabby {
namespace {

cpg::Cpg build(const jir::Program& program, util::Executor* executor) {
  cpg::CpgOptions options;
  options.executor = executor;
  return cpg::build_cpg(program, options);
}

void expect_identical_cpg(const jir::Program& program, util::Executor* pool,
                          const std::string& label) {
  cpg::Cpg serial = build(program, nullptr);
  cpg::Cpg parallel = build(program, pool);
  EXPECT_EQ(graph::serialize(serial.db), graph::serialize(parallel.db)) << label;
  EXPECT_EQ(serial.stats.class_nodes, parallel.stats.class_nodes) << label;
  EXPECT_EQ(serial.stats.method_nodes, parallel.stats.method_nodes) << label;
  EXPECT_EQ(serial.stats.relationship_edges, parallel.stats.relationship_edges) << label;
  EXPECT_EQ(serial.stats.call_edges, parallel.stats.call_edges) << label;
  EXPECT_EQ(serial.stats.alias_edges, parallel.stats.alias_edges) << label;
  EXPECT_EQ(serial.stats.pruned_call_sites, parallel.stats.pruned_call_sites) << label;
  EXPECT_EQ(serial.stats.source_methods, parallel.stats.source_methods) << label;
  EXPECT_EQ(serial.stats.sink_methods, parallel.stats.sink_methods) << label;
}

void expect_identical_search(const graph::GraphDb& db, util::Executor* pool,
                             const std::string& label) {
  finder::FinderOptions serial_options;
  finder::GadgetChainFinder serial_finder(db, serial_options);
  finder::FinderReport serial_report = serial_finder.find_all();

  finder::FinderOptions parallel_options;
  parallel_options.executor = pool;
  finder::GadgetChainFinder parallel_finder(db, parallel_options);
  finder::FinderReport parallel_report = parallel_finder.find_all();

  ASSERT_EQ(serial_report.chains.size(), parallel_report.chains.size()) << label;
  for (std::size_t i = 0; i < serial_report.chains.size(); ++i) {
    EXPECT_EQ(serial_report.chains[i].key(), parallel_report.chains[i].key())
        << label << " chain " << i;
    EXPECT_EQ(serial_report.chains[i].sink_type, parallel_report.chains[i].sink_type)
        << label << " chain " << i;
  }
  EXPECT_EQ(serial_report.sinks_considered, parallel_report.sinks_considered) << label;
  EXPECT_EQ(serial_report.expansions, parallel_report.expansions) << label;
  EXPECT_EQ(serial_report.budget_exhausted, parallel_report.budget_exhausted) << label;
}

TEST(ParallelDeterminism, YsoserialCpgBytesIdentical) {
  util::ThreadPool pool(8);  // oversubscribed on small machines, on purpose
  for (const std::string& name : corpus::ysoserial_names()) {
    corpus::YsoserialModel model = corpus::build_ysoserial(name);
    jir::Program program = jar::link({corpus::jdk_base_archive(), model.jar});
    expect_identical_cpg(program, &pool, name);
  }
}

TEST(ParallelDeterminism, YsoserialFinderReportIdentical) {
  util::ThreadPool pool(8);
  for (const std::string& name : corpus::ysoserial_names()) {
    corpus::YsoserialModel model = corpus::build_ysoserial(name);
    jir::Program program = jar::link({corpus::jdk_base_archive(), model.jar});
    cpg::Cpg cpg = build(program, &pool);
    expect_identical_search(cpg.db, &pool, name);
  }
}

TEST(ParallelDeterminism, SceneCpgBytesIdentical) {
  util::ThreadPool pool(8);
  for (const std::string& name : corpus::scene_names()) {
    corpus::Scene scene = corpus::build_scene(name);
    jir::Program program = scene.link();
    expect_identical_cpg(program, &pool, name);
  }
}

TEST(ParallelDeterminism, SceneFinderReportIdentical) {
  util::ThreadPool pool(8);
  corpus::Scene scene = corpus::build_scene("Spring");
  jir::Program program = scene.link();
  cpg::Cpg cpg = build(program, &pool);
  expect_identical_search(cpg.db, &pool, "Spring");
}

TEST(ParallelDeterminism, PrecomputeMatchesDemandDrivenSummaries) {
  corpus::YsoserialModel model = corpus::build_ysoserial("CommonsCollections6");
  jir::Program program = jar::link({corpus::jdk_base_archive(), model.jar});
  jir::Hierarchy hierarchy(program);

  analysis::ControllabilityAnalysis demand(program, hierarchy);
  util::ThreadPool pool(8);
  analysis::ControllabilityAnalysis waves(program, hierarchy);
  waves.precompute(&pool);

  const analysis::PrecomputeStats& stats = waves.precompute_stats();
  EXPECT_GT(stats.waves, 0u);
  EXPECT_EQ(stats.wave_methods + stats.serial_methods, program.all_methods().size());

  for (jir::MethodId id : program.all_methods()) {
    const analysis::MethodSummary& a = demand.summary(id);
    const analysis::MethodSummary& b = waves.cached_summary(id);
    EXPECT_EQ(a.action.to_strings(), b.action.to_strings()) << program.method(id).name;
    ASSERT_EQ(a.call_sites.size(), b.call_sites.size()) << program.method(id).name;
    for (std::size_t i = 0; i < a.call_sites.size(); ++i) {
      EXPECT_EQ(a.call_sites[i].stmt_index, b.call_sites[i].stmt_index);
      EXPECT_EQ(a.call_sites[i].pp, b.call_sites[i].pp);
      EXPECT_EQ(a.call_sites[i].resolved, b.call_sites[i].resolved);
    }
  }
}

TEST(ParallelDeterminism, CfgBuildGraphsMatchesPerMethodConstruction) {
  corpus::YsoserialModel model = corpus::build_ysoserial("URLDNS");
  jir::Program program = jar::link({corpus::jdk_base_archive(), model.jar});
  util::ThreadPool pool(8);
  std::vector<std::optional<cfg::ControlFlowGraph>> parallel = cfg::build_graphs(program, &pool);
  std::vector<jir::MethodId> methods = program.all_methods();
  ASSERT_EQ(parallel.size(), methods.size());
  for (std::size_t i = 0; i < methods.size(); ++i) {
    const jir::Method& m = program.method(methods[i]);
    ASSERT_EQ(parallel[i].has_value(), m.has_body());
    if (m.has_body()) {
      EXPECT_EQ(parallel[i]->to_string(), cfg::ControlFlowGraph(m).to_string());
    }
  }
}

TEST(ParallelDeterminism, ValidationReportOrderIdentical) {
  corpus::Scene scene = corpus::build_scene("JDK8");
  jir::Program program = scene.link();
  util::ThreadPool pool(8);
  std::vector<jir::ValidationIssue> serial = jir::validate(program);
  std::vector<jir::ValidationIssue> parallel = jir::validate(program, true, &pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].to_string(), parallel[i].to_string());
  }
}

}  // namespace
}  // namespace tabby
