// Fuzz-style corruption coverage for the versioned graph-store format
// (graph/serialize). The store parses untrusted bytes, so every corruption —
// truncation at any offset, a flipped byte anywhere, a wrong magic, a
// version skew, a pre-versioning store, a zero-length file — must surface as
// a util::Result error with a useful message, and must never crash, leak or
// read out of bounds (this suite runs under the CI sanitizer job).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "corpus/components.hpp"
#include "cpg/builder.hpp"
#include "graph/serialize.hpp"
#include "util/bytes.hpp"

namespace tabby::graph {
namespace {

namespace fs = std::filesystem;

/// A small graph exercising every Value tag the format can carry.
GraphDb tiny_graph() {
  GraphDb db;
  PropertyMap props;
  props["null"] = Value{std::monostate{}};
  props["flag"] = Value{true};
  props["int"] = Value{std::int64_t{-42}};
  props["pi"] = Value{3.14159};
  props["name"] = Value{std::string{"node"}};
  props["ints"] = Value{std::vector<std::int64_t>{-1, 0, 7}};
  props["strs"] = Value{std::vector<std::string>{"a", "bc"}};
  NodeId a = db.add_node("Method", props);
  NodeId b = db.add_node("Method", {{"name", Value{std::string{"callee"}}}});
  db.add_edge(a, b, "CALL", {{"pp", Value{std::vector<std::int64_t>{0}}}});
  return db;
}

std::vector<std::byte> flip(std::vector<std::byte> bytes, std::size_t offset) {
  bytes[offset] ^= std::byte{0xFF};
  return bytes;
}

TEST(SerializeRobustness, RoundTripIsByteStable) {
  std::vector<std::byte> first = serialize(tiny_graph());
  auto loaded = deserialize(first);
  ASSERT_TRUE(loaded.ok()) << loaded.error().to_string();
  EXPECT_EQ(serialize(loaded.value()), first);

  // And for a realistic CPG, the property the warm `--store` path relies on.
  corpus::Component component = corpus::build_component("BeanShell1");
  std::vector<std::byte> store = serialize(cpg::build_cpg(component.link()).db);
  auto reloaded = deserialize(store);
  ASSERT_TRUE(reloaded.ok()) << reloaded.error().to_string();
  EXPECT_EQ(serialize(reloaded.value()), store);
}

TEST(SerializeRobustness, ZeroLengthInputIsRejected) {
  auto r = deserialize({});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().to_string().find("truncated"), std::string::npos);
}

TEST(SerializeRobustness, TruncationAtEveryOffsetIsRejected) {
  std::vector<std::byte> store = serialize(tiny_graph());
  std::span<const std::byte> all(store);
  for (std::size_t len = 0; len < store.size(); ++len) {
    auto r = deserialize(all.first(len));
    EXPECT_FALSE(r.ok()) << "truncation to " << len << " bytes parsed successfully";
  }
}

TEST(SerializeRobustness, TruncationOfRealStoreAtSectionBoundariesIsRejected) {
  corpus::Component component = corpus::build_component("C3P0");
  std::vector<std::byte> store = serialize(cpg::build_cpg(component.link()).db);
  std::span<const std::byte> all(store);
  // Section boundaries: inside magic, after magic, after version, after the
  // declared length, the first payload byte, mid-payload, inside the
  // trailing checksum — plus a stride sweep across the whole store.
  std::vector<std::size_t> cuts{0, 2, 4, 6, 13, 14, 15, store.size() / 2, store.size() - 8,
                                store.size() - 1};
  for (std::size_t len = 0; len < store.size(); len += 97) cuts.push_back(len);
  for (std::size_t len : cuts) {
    auto r = deserialize(all.first(len));
    EXPECT_FALSE(r.ok()) << "truncation to " << len << " bytes parsed successfully";
  }
}

TEST(SerializeRobustness, EverySingleByteFlipIsRejected) {
  // The checksum covers header and payload, so no single corrupted byte may
  // survive — including corruption of the checksum itself.
  std::vector<std::byte> store = serialize(tiny_graph());
  for (std::size_t offset = 0; offset < store.size(); ++offset) {
    auto r = deserialize(flip(store, offset));
    EXPECT_FALSE(r.ok()) << "flip at offset " << offset << " parsed successfully";
  }
}

TEST(SerializeRobustness, SampledByteFlipsOfRealStoreAreRejected) {
  corpus::Component component = corpus::build_component("C3P0");
  std::vector<std::byte> store = serialize(cpg::build_cpg(component.link()).db);
  for (std::size_t offset = 0; offset < store.size(); offset += 131) {
    auto r = deserialize(flip(store, offset));
    EXPECT_FALSE(r.ok()) << "flip at offset " << offset << " parsed successfully";
  }
}

TEST(SerializeRobustness, BadMagicIsDiagnosed) {
  auto r = deserialize(flip(serialize(tiny_graph()), 0));
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().to_string().find("magic"), std::string::npos) << r.error().to_string();
}

TEST(SerializeRobustness, ChecksumMismatchIsDiagnosed) {
  // Flip a payload byte: magic/version/length still parse, the checksum
  // must catch it before any payload decoding happens.
  std::vector<std::byte> store = serialize(tiny_graph());
  auto r = deserialize(flip(store, store.size() / 2));
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().to_string().find("checksum mismatch"), std::string::npos)
      << r.error().to_string();
}

TEST(SerializeRobustness, TrailingGarbageIsDiagnosed) {
  std::vector<std::byte> store = serialize(tiny_graph());
  store.push_back(std::byte{0x00});
  auto r = deserialize(store);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().to_string().find("truncated or oversized"), std::string::npos)
      << r.error().to_string();
}

TEST(SerializeRobustness, FutureVersionIsRejectedWithDiagnostic) {
  std::vector<std::byte> store = serialize(tiny_graph());
  store[4] = std::byte{99};  // version field lives right after the magic
  store[5] = std::byte{0};
  auto r = deserialize(store);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().to_string().find("unsupported graph store version 99"), std::string::npos)
      << r.error().to_string();
}

// Regression: the pre-versioning (version 1) layout had no payload length
// and no checksum, and load() used to accept arbitrary bytes after the
// 6-byte prefix. Such stores must now fail closed with a message that tells
// the user how to recover.
TEST(SerializeRobustness, PreVersioningStoreIsRejectedWithHelpfulMessage) {
  util::ByteWriter legacy;
  legacy.u32(kGraphStoreMagic);
  legacy.u16(1);           // the old version field
  legacy.uvarint(1);       // node count
  legacy.bytes("Method");  // label
  legacy.uvarint(0);       // no props
  legacy.uvarint(0);       // edge count
  // Pad past the minimum store size so the version check, not the length
  // check, is what rejects it.
  for (int i = 0; i < 16; ++i) legacy.u8(0);
  auto r = deserialize(legacy.data());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().to_string().find("version 1 predates"), std::string::npos)
      << r.error().to_string();
  EXPECT_NE(r.error().to_string().find("tabby analyze --store"), std::string::npos)
      << r.error().to_string();
}

TEST(SerializeRobustness, LoadRejectsMissingEmptyAndGarbageFiles) {
  fs::path dir = fs::temp_directory_path() / ("tabby_ser_robust_" + std::to_string(::getpid()));
  fs::create_directories(dir);

  auto missing = load(dir / "does_not_exist.tgdb");
  EXPECT_FALSE(missing.ok());

  {
    std::ofstream empty(dir / "empty.tgdb", std::ios::binary);
  }
  auto empty = load(dir / "empty.tgdb");
  ASSERT_FALSE(empty.ok());
  EXPECT_NE(empty.error().to_string().find("truncated"), std::string::npos);

  {
    std::ofstream text(dir / "garbage.tgdb", std::ios::binary);
    text << "this is not a graph store, just some text that is long enough";
  }
  auto garbage = load(dir / "garbage.tgdb");
  ASSERT_FALSE(garbage.ok());
  EXPECT_NE(garbage.error().to_string().find("magic"), std::string::npos);

  fs::remove_all(dir);
}

TEST(SerializeRobustness, SaveLoadRoundTripsThroughDisk) {
  fs::path dir = fs::temp_directory_path() / ("tabby_ser_disk_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  GraphDb db = tiny_graph();
  ASSERT_TRUE(save(db, dir / "ok.tgdb").ok());
  auto loaded = load(dir / "ok.tgdb");
  ASSERT_TRUE(loaded.ok()) << loaded.error().to_string();
  EXPECT_EQ(serialize(loaded.value()), serialize(db));
  fs::remove_all(dir);
}

}  // namespace
}  // namespace tabby::graph
