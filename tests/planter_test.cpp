// Parameterized sweep over every sink flavour × dispatch shape the corpus
// planter supports: each planted structure must behave exactly as designed —
// real chains found by Tabby and fired by the VM, guarded fakes found but
// refuted, wipe fakes invisible to Tabby, const webs fully pruned.
#include <gtest/gtest.h>

#include "corpus/jdk.hpp"
#include "corpus/planter.hpp"
#include "cpg/builder.hpp"
#include "evalkit/evalkit.hpp"
#include "finder/finder.hpp"
#include "jir/validate.hpp"

namespace tabby::corpus {
namespace {

struct Shape {
  SinkFlavor flavor;
  bool iface;
};

std::string shape_name(const ::testing::TestParamInfo<Shape>& info) {
  std::string name = std::string(sink_signature(info.param.flavor));
  std::string out;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) out.push_back(c);
  }
  return out + (info.param.iface ? "_iface" : "_plain");
}

jir::Program plant_one(const std::function<void(Planter&)>& plant,
                       std::vector<GroundTruthChain>* truths = nullptr,
                       std::vector<FakeStructure>* fakes = nullptr) {
  jir::ProgramBuilder pb;
  Planter planter(pb, "sweep.pkg", 42);
  plant(planter);
  (void)truths;
  (void)fakes;
  jar::Archive jar;
  jar.meta.name = "sweep";
  jar.classes = pb.build().classes();
  return jar::link({jdk_base_archive(), jar});
}

class RealChainSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(RealChainSweep, FoundByTabbyAndFiredByVm) {
  GroundTruthChain truth;
  jir::Program program = plant_one([&](Planter& planter) {
    RealChainOptions options;
    options.iface = GetParam().iface;
    options.sink = GetParam().flavor;
    truth = planter.plant_real_chain(options);
  });
  ASSERT_TRUE(jir::validate(program).empty());

  // Tabby finds exactly this chain.
  cpg::Cpg cpg = cpg::build_cpg(program);
  finder::GadgetChainFinder finder(cpg.db);
  auto chains = finder.find_all().chains;
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_EQ(chains[0].source_signature(), truth.source_signature);
  EXPECT_EQ(chains[0].sink_signature(), truth.sink_signature);
  EXPECT_EQ(truth.sink_signature, sink_signature(GetParam().flavor));

  // The recipe fires with a satisfied trigger.
  evalkit::VerificationOutcome outcome = evalkit::verify_ground_truth(program, {truth}, {});
  EXPECT_TRUE(outcome.all_good())
      << (outcome.failures.empty() ? "count mismatch" : outcome.failures[0]);
}

INSTANTIATE_TEST_SUITE_P(AllShapes, RealChainSweep, ::testing::ValuesIn([] {
                           std::vector<Shape> shapes;
                           for (SinkFlavor flavor : kAllSinkFlavors) {
                             shapes.push_back(Shape{flavor, false});
                             shapes.push_back(Shape{flavor, true});
                           }
                           return shapes;
                         }()),
                         shape_name);

class GuardedFakeSweep : public ::testing::TestWithParam<SinkFlavor> {};

TEST_P(GuardedFakeSweep, FoundByTabbyButRefutedByVm) {
  FakeStructure fake;
  jir::Program program =
      plant_one([&](Planter& planter) { fake = planter.plant_guarded_fake(GetParam()); });

  cpg::Cpg cpg = cpg::build_cpg(program);
  finder::GadgetChainFinder finder(cpg.db);
  auto chains = finder.find_all().chains;
  ASSERT_EQ(chains.size(), 1u);  // statically reported: the paper's FP class
  EXPECT_EQ(chains[0].source_signature(), fake.source_signature);

  evalkit::VerificationOutcome outcome = evalkit::verify_ground_truth(program, {}, {fake});
  EXPECT_TRUE(outcome.all_good())
      << (outcome.failures.empty() ? "count mismatch" : outcome.failures[0]);
}

INSTANTIATE_TEST_SUITE_P(AllFlavors, GuardedFakeSweep, ::testing::ValuesIn(std::vector<SinkFlavor>(
                                                           std::begin(kAllSinkFlavors),
                                                           std::end(kAllSinkFlavors))),
                         [](const ::testing::TestParamInfo<SinkFlavor>& info) {
                           std::string name = std::string(sink_signature(info.param));
                           std::string out;
                           for (char c : name) {
                             if (std::isalnum(static_cast<unsigned char>(c))) out.push_back(c);
                           }
                           return out;
                         });

TEST(PlanterShapes, WipeFakeInvisibleToTabbyVisibleToBaselines) {
  FakeStructure fake;
  jir::Program program = plant_one([&](Planter& planter) { fake = planter.plant_wipe_fake(); });

  cpg::Cpg cpg = cpg::build_cpg(program);
  finder::GadgetChainFinder finder(cpg.db);
  EXPECT_TRUE(finder.find_all().chains.empty());  // Action summary kills it

  evalkit::ToolRun gi = evalkit::run_tool(evalkit::Tool::GadgetInspector, program);
  EXPECT_EQ(gi.chains.size(), 1u);  // intraprocedural taint reports it
}

TEST(PlanterShapes, ConstWebOnlyVisibleToSerianalyzer) {
  jir::Program program = plant_one([&](Planter& planter) { planter.plant_const_web(5); });

  cpg::Cpg cpg = cpg::build_cpg(program);
  // Every WebSource->hub edge is pruned (const args): the exec sink keeps a
  // single incoming CALL edge, from the hub.
  auto exec_nodes = cpg.db.find_nodes("Method", "SIGNATURE",
                                      graph::Value{std::string("java.lang.Runtime#exec/1")});
  ASSERT_EQ(exec_nodes.size(), 1u);
  EXPECT_EQ(cpg.db.in_edges_typed(exec_nodes[0], "CALL").size(), 1u);
  finder::GadgetChainFinder finder(cpg.db);
  EXPECT_TRUE(finder.find_all().chains.empty());

  EXPECT_TRUE(evalkit::run_tool(evalkit::Tool::GadgetInspector, program).chains.empty());
  evalkit::ToolRun sl = evalkit::run_tool(evalkit::Tool::Serianalyzer, program);
  EXPECT_EQ(sl.chains.size(), 5u);  // one fake per web source
}

TEST(PlanterShapes, ExplosiveWebPrunedToNothingForTabby) {
  jir::Program program =
      plant_one([&](Planter& planter) { planter.plant_explosive_web(24, 5); });
  cpg::Cpg cpg = cpg::build_cpg(program);
  finder::GadgetChainFinder finder(cpg.db);
  finder::FinderReport report = finder.find_all();
  EXPECT_TRUE(report.chains.empty());
  EXPECT_LT(report.expansions, 100u);  // the maze never gets explored
}

TEST(PlanterShapes, ReflectionChainInvisibleToEveryTool) {
  GroundTruthChain truth;
  jir::Program program = plant_one(
      [&](Planter& planter) { truth = planter.plant_reflection_chain(SinkFlavor::Exec); });
  EXPECT_TRUE(truth.requires_reflection);
  for (evalkit::Tool tool : {evalkit::Tool::Tabby, evalkit::Tool::GadgetInspector,
                             evalkit::Tool::Serianalyzer}) {
    EXPECT_TRUE(evalkit::run_tool(tool, program).chains.empty())
        << evalkit::tool_name(tool);
  }
}

TEST(PlanterShapes, SharedHelperYieldsDistinctChains) {
  GroundTruthChain t1, t2;
  jir::Program program = plant_one([&](Planter& planter) {
    std::string helper = planter.make_plain_helper(SinkFlavor::Exec);
    RealChainOptions options;
    options.sink = SinkFlavor::Exec;
    options.shared_helper = helper;
    t1 = planter.plant_real_chain(options);
    t2 = planter.plant_real_chain(options);
  });
  cpg::Cpg cpg = cpg::build_cpg(program);
  finder::GadgetChainFinder finder(cpg.db);
  EXPECT_EQ(finder.find_all().chains.size(), 2u);  // Tabby keeps both
  evalkit::ToolRun gi = evalkit::run_tool(evalkit::Tool::GadgetInspector, program);
  EXPECT_EQ(gi.chains.size(), 1u);  // visited-skip loses one
}

}  // namespace
}  // namespace tabby::corpus
