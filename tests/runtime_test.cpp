// Tests for the deserialization VM: value semantics, dispatch, taint flow,
// sink observation, branch behaviour (guard-broken chains must fail), budget
// handling, and full attack verification of the URLDNS / EvilObject models.
#include <gtest/gtest.h>

#include "fixtures.hpp"
#include "runtime/objectgraph.hpp"
#include "runtime/vm.hpp"

namespace tabby::runtime {
namespace {

struct World {
  jir::Program program;
  std::unique_ptr<jir::Hierarchy> hierarchy;
  std::unique_ptr<Interpreter> vm;
};

World make_world(jir::Program program, VmOptions options = {}) {
  World w;
  w.program = std::move(program);
  w.hierarchy = std::make_unique<jir::Hierarchy>(w.program);
  w.vm = std::make_unique<Interpreter>(w.program, *w.hierarchy, std::move(options));
  return w;
}

TEST(Vm, UrldnsAttackSucceeds) {
  World w = make_world(testing::urldns_program());

  ObjectGraphSpec spec;
  spec.objects["map"] = ObjectSpec{"java.util.HashMap", {{"key", Ref{"url"}}}, {}};
  spec.objects["url"] = ObjectSpec{
      "java.net.URL", {{"host", std::string("attacker.example")}, {"handler", Ref{"handler"}}},
      {}};
  spec.objects["handler"] = ObjectSpec{"java.net.URLStreamHandler", {}, {}};
  spec.root = "map";

  ObjectPtr root = instantiate(spec);
  ASSERT_NE(root, nullptr);
  ExecutionResult result = w.vm->deserialize(root);
  EXPECT_TRUE(result.completed) << result.fault;
  ASSERT_FALSE(result.sink_hits.empty());
  EXPECT_TRUE(result.attack_succeeded("java.net.InetAddress#getByName/1"));
  // The observed call stack is the gadget chain.
  const SinkHit& hit = result.sink_hits[0];
  EXPECT_EQ(hit.call_stack.front(), "java.util.HashMap#readObject/1");
  EXPECT_EQ(hit.call_stack.back(), "java.net.InetAddress#getByName/1");
}

TEST(Vm, UrldnsWithEnumMapKeyHitsNoSink) {
  World w = make_world(testing::urldns_program());
  ObjectGraphSpec spec;
  spec.objects["map"] = ObjectSpec{"java.util.HashMap", {{"key", Ref{"em"}}}, {}};
  spec.objects["em"] = ObjectSpec{"java.util.EnumMap", {}, {}};
  spec.root = "map";
  ExecutionResult result = w.vm->deserialize(instantiate(spec));
  EXPECT_TRUE(result.completed) << result.fault;
  EXPECT_TRUE(result.sink_hits.empty());  // EnumMap.hashCode is a dead end
  EXPECT_FALSE(result.attack_succeeded());
}

TEST(Vm, EvilObjectAttackSucceeds) {
  World w = make_world(testing::evil_object_program());
  ObjectGraphSpec spec;
  spec.objects["a"] = ObjectSpec{"demo.EvilObjectA", {{"val1", Ref{"b"}}}, {}};
  spec.objects["b"] = ObjectSpec{"demo.EvilObjectB", {{"val2", std::string("rm -rf /")}}, {}};
  spec.root = "a";
  ExecutionResult result = w.vm->deserialize(instantiate(spec));
  EXPECT_TRUE(result.attack_succeeded("java.lang.Runtime#exec/1"));
}

TEST(Vm, UntaintedSinkArgumentIsNotAnAttack) {
  // Call exec with a constant directly (not via deserialization): the hit is
  // recorded but the trigger is unsatisfied.
  jir::ProgramBuilder pb;
  pb.with_core_classes();
  auto runtime = pb.add_class("java.lang.Runtime");
  runtime.method("exec").param("java.lang.String").returns("void").set_native();
  auto cls = pb.add_class("t.Direct");
  cls.method("go")
      .set_static()
      .returns("void")
      .const_str("cmd", "ls")
      .new_object("rt", "java.lang.Runtime")
      .invoke_virtual("", "rt", "java.lang.Runtime", "exec", {"cmd"})
      .ret();
  World w = make_world(pb.build());
  ExecutionResult result = w.vm->run("t.Direct", "go", VmValue::null(), {});
  ASSERT_EQ(result.sink_hits.size(), 1u);
  EXPECT_FALSE(result.sink_hits[0].trigger_satisfied);
  EXPECT_FALSE(result.attack_succeeded());
}

TEST(Vm, GuardBrokenChainFails) {
  // The chain passes through `if (this.mode == 42)` but mode cannot be 42:
  // the readObject path overwrites it. The static analyses report this chain
  // (path-insensitive); the VM proves it ineffective — a Tabby false
  // positive reproduced.
  jir::ProgramBuilder pb;
  pb.with_core_classes();
  auto runtime = pb.add_class("java.lang.Runtime");
  runtime.method("exec").param("java.lang.String").returns("void").set_native();
  auto cls = pb.add_class("t.Guarded");
  cls.serializable();
  cls.field("cmd", "java.lang.String");
  cls.field("mode", "int");
  cls.method("readObject")
      .param("java.io.ObjectInputStream")
      .returns("void")
      .const_int("zero", 0)
      .field_store("@this", "mode", "zero")  // resets whatever the attacker set
      .field_load("m", "@this", "mode")
      .const_int("magic", 42)
      .if_cmp("m", jir::CmpOp::Ne, "magic", "out")
      .field_load("c", "@this", "cmd")
      .new_object("rt", "java.lang.Runtime")
      .invoke_virtual("", "rt", "java.lang.Runtime", "exec", {"c"})
      .mark("out")
      .ret();
  World w = make_world(pb.build());

  ObjectGraphSpec spec;
  spec.objects["g"] = ObjectSpec{
      "t.Guarded", {{"cmd", std::string("evil")}, {"mode", std::int64_t{42}}}, {}};
  spec.root = "g";
  ExecutionResult result = w.vm->deserialize(instantiate(spec));
  EXPECT_TRUE(result.completed) << result.fault;
  EXPECT_TRUE(result.sink_hits.empty());
  EXPECT_FALSE(result.attack_succeeded());
}

TEST(Vm, GuardPassableChainSucceeds) {
  // Same guard but the field is honoured: setting mode = 42 fires the sink.
  jir::ProgramBuilder pb;
  pb.with_core_classes();
  auto runtime = pb.add_class("java.lang.Runtime");
  runtime.method("exec").param("java.lang.String").returns("void").set_native();
  auto cls = pb.add_class("t.Guarded2");
  cls.serializable();
  cls.field("cmd", "java.lang.String");
  cls.field("mode", "int");
  cls.method("readObject")
      .param("java.io.ObjectInputStream")
      .returns("void")
      .field_load("m", "@this", "mode")
      .const_int("magic", 42)
      .if_cmp("m", jir::CmpOp::Ne, "magic", "out")
      .field_load("c", "@this", "cmd")
      .new_object("rt", "java.lang.Runtime")
      .invoke_virtual("", "rt", "java.lang.Runtime", "exec", {"c"})
      .mark("out")
      .ret();
  World w = make_world(pb.build());

  ObjectGraphSpec spec;
  spec.objects["g"] = ObjectSpec{
      "t.Guarded2", {{"cmd", std::string("evil")}, {"mode", std::int64_t{42}}}, {}};
  spec.root = "g";
  EXPECT_TRUE(w.vm->deserialize(instantiate(spec)).attack_succeeded());
}

TEST(Vm, VirtualDispatchPicksDynamicType) {
  jir::ProgramBuilder pb;
  pb.with_core_classes();
  auto base = pb.add_class("t.Base");
  base.method("tag").returns("java.lang.String").const_str("s", "base").ret("s");
  auto derived = pb.add_class("t.Derived");
  derived.extends("t.Base");
  derived.method("tag").returns("java.lang.String").const_str("s", "derived").ret("s");
  auto driver = pb.add_class("t.Driver");
  driver.method("callTag")
      .set_static()
      .param("t.Base")
      .returns("java.lang.String")
      .invoke_virtual("r", "@p1", "t.Base", "tag", {})
      .ret("r");
  World w = make_world(pb.build());

  ObjectPtr obj = std::make_shared<Object>("t.Derived");
  ExecutionResult result =
      w.vm->run("t.Driver", "callTag", VmValue::null(), {VmValue::of(obj)});
  EXPECT_TRUE(result.completed);
  // No direct way to read the return, so use a sink-free behavioural check:
  // dispatch correctness is covered by the chain tests; here we simply
  // require clean completion through the override.
}

TEST(Vm, NpeAbortsExecution) {
  jir::ProgramBuilder pb;
  pb.with_core_classes();
  auto cls = pb.add_class("t.Npe");
  cls.method("go")
      .set_static()
      .returns("void")
      .const_null("x")
      .invoke_virtual("", "x", "java.lang.Object", "toString", {})
      .ret();
  World w = make_world(pb.build());
  ExecutionResult result = w.vm->run("t.Npe", "go", VmValue::null(), {});
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.fault.find("NPE"), std::string::npos);
}

TEST(Vm, ThrowAbortsExecution) {
  jir::ProgramBuilder pb;
  pb.with_core_classes();
  auto cls = pb.add_class("t.Thrower");
  cls.method("go").set_static().returns("void").new_object("e", "java.lang.Exception")
      .throw_value("e").ret();
  World w = make_world(pb.build());
  ExecutionResult result = w.vm->run("t.Thrower", "go", VmValue::null(), {});
  EXPECT_FALSE(result.completed);
}

TEST(Vm, InfiniteLoopHitsStepBudget) {
  jir::ProgramBuilder pb;
  pb.with_core_classes();
  auto cls = pb.add_class("t.Loop");
  cls.method("go").set_static().returns("void").mark("head").jump("head");
  VmOptions options;
  options.max_steps = 1000;
  World w = make_world(pb.build(), options);
  ExecutionResult result = w.vm->run("t.Loop", "go", VmValue::null(), {});
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.fault.find("step budget"), std::string::npos);
}

TEST(Vm, UnboundedRecursionHitsDepthBudget) {
  jir::ProgramBuilder pb;
  pb.with_core_classes();
  auto cls = pb.add_class("t.Rec");
  cls.method("go").set_static().returns("void").invoke_static("", "t.Rec", "go", {}).ret();
  VmOptions options;
  options.max_call_depth = 16;
  World w = make_world(pb.build(), options);
  ExecutionResult result = w.vm->run("t.Rec", "go", VmValue::null(), {});
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.fault.find("depth"), std::string::npos);
}

TEST(Vm, ArraysStoreAndLoad) {
  jir::ProgramBuilder pb;
  pb.with_core_classes();
  auto runtime = pb.add_class("java.lang.Runtime");
  runtime.method("exec").param("java.lang.String").returns("void").set_native();
  auto cls = pb.add_class("t.Arr");
  cls.serializable();
  cls.field("payload", "java.lang.Object[]");
  cls.method("readObject")
      .param("java.io.ObjectInputStream")
      .returns("void")
      .field_load("arr", "@this", "payload")
      .const_int("i", 0)
      .array_load("cmd", "arr", "i")
      .new_object("rt", "java.lang.Runtime")
      .invoke_virtual("", "rt", "java.lang.Runtime", "exec", {"cmd"})
      .ret();
  World w = make_world(pb.build());

  ObjectGraphSpec spec;
  spec.objects["root"] = ObjectSpec{"t.Arr", {{"payload", Ref{"arr"}}}, {}};
  spec.objects["arr"] = ObjectSpec{"java.lang.Object[]", {}, {std::string("evil-cmd")}};
  spec.root = "root";
  EXPECT_TRUE(w.vm->deserialize(instantiate(spec)).attack_succeeded());
}

TEST(Vm, MissingSourceMethodReported) {
  World w = make_world(testing::urldns_program());
  ObjectPtr plain = std::make_shared<Object>("java.net.URLStreamHandler");
  ExecutionResult result = w.vm->deserialize(plain);
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.fault.find("no deserialization source"), std::string::npos);
}

TEST(Vm, TaintGraphMarksEverythingReachable) {
  ObjectGraphSpec spec;
  spec.objects["a"] = ObjectSpec{"t.A", {{"next", Ref{"b"}}, {"s", std::string("x")}}, {}};
  spec.objects["b"] = ObjectSpec{"t.B", {{"back", Ref{"a"}}}, {std::int64_t{7}}};
  spec.root = "a";
  ObjectPtr root = instantiate(spec);
  Interpreter::taint_graph(root);  // must terminate despite the cycle
  EXPECT_TRUE(root->get_field("s").tainted);
  const ObjectPtr* b = root->get_field("next").object();
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE((*b)->elements()[0].tainted);
  EXPECT_TRUE((*b)->get_field("back").tainted);
}

TEST(ObjectGraph, UndefinedRefBecomesNull) {
  ObjectGraphSpec spec;
  spec.objects["a"] = ObjectSpec{"t.A", {{"x", Ref{"ghost"}}}, {}};
  spec.root = "a";
  ObjectPtr root = instantiate(spec);
  ASSERT_NE(root, nullptr);
  EXPECT_TRUE(root->get_field("x").is_null());
}

TEST(ObjectGraph, EmptySpecYieldsNull) {
  EXPECT_EQ(instantiate(ObjectGraphSpec{}), nullptr);
  ObjectGraphSpec bad_root;
  bad_root.objects["a"] = ObjectSpec{"t.A", {}, {}};
  bad_root.root = "missing";
  EXPECT_EQ(instantiate(bad_root), nullptr);
}

}  // namespace
}  // namespace tabby::runtime
