// Tests for the deserialization VM: value semantics, dispatch, taint flow,
// sink observation, branch behaviour (guard-broken chains must fail), budget
// handling, and full attack verification of the URLDNS / EvilObject models.
#include <gtest/gtest.h>

#include "fixtures.hpp"
#include "runtime/objectgraph.hpp"
#include "runtime/vm.hpp"
#include "util/failpoint.hpp"

namespace tabby::runtime {
namespace {

struct World {
  jir::Program program;
  std::unique_ptr<jir::Hierarchy> hierarchy;
  std::unique_ptr<Interpreter> vm;
};

World make_world(jir::Program program, VmOptions options = {}) {
  World w;
  w.program = std::move(program);
  w.hierarchy = std::make_unique<jir::Hierarchy>(w.program);
  w.vm = std::make_unique<Interpreter>(w.program, *w.hierarchy, std::move(options));
  return w;
}

TEST(Vm, UrldnsAttackSucceeds) {
  World w = make_world(testing::urldns_program());

  ObjectGraphSpec spec;
  spec.objects["map"] = ObjectSpec{"java.util.HashMap", {{"key", Ref{"url"}}}, {}};
  spec.objects["url"] = ObjectSpec{
      "java.net.URL", {{"host", std::string("attacker.example")}, {"handler", Ref{"handler"}}},
      {}};
  spec.objects["handler"] = ObjectSpec{"java.net.URLStreamHandler", {}, {}};
  spec.root = "map";

  ObjectPtr root = instantiate(spec);
  ASSERT_NE(root, nullptr);
  ExecutionResult result = w.vm->deserialize(root);
  EXPECT_TRUE(result.completed) << result.fault;
  ASSERT_FALSE(result.sink_hits.empty());
  EXPECT_TRUE(result.attack_succeeded("java.net.InetAddress#getByName/1"));
  // The observed call stack is the gadget chain.
  const SinkHit& hit = result.sink_hits[0];
  EXPECT_EQ(hit.call_stack.front(), "java.util.HashMap#readObject/1");
  EXPECT_EQ(hit.call_stack.back(), "java.net.InetAddress#getByName/1");
}

TEST(Vm, UrldnsWithEnumMapKeyHitsNoSink) {
  World w = make_world(testing::urldns_program());
  ObjectGraphSpec spec;
  spec.objects["map"] = ObjectSpec{"java.util.HashMap", {{"key", Ref{"em"}}}, {}};
  spec.objects["em"] = ObjectSpec{"java.util.EnumMap", {}, {}};
  spec.root = "map";
  ExecutionResult result = w.vm->deserialize(instantiate(spec));
  EXPECT_TRUE(result.completed) << result.fault;
  EXPECT_TRUE(result.sink_hits.empty());  // EnumMap.hashCode is a dead end
  EXPECT_FALSE(result.attack_succeeded());
}

TEST(Vm, EvilObjectAttackSucceeds) {
  World w = make_world(testing::evil_object_program());
  ObjectGraphSpec spec;
  spec.objects["a"] = ObjectSpec{"demo.EvilObjectA", {{"val1", Ref{"b"}}}, {}};
  spec.objects["b"] = ObjectSpec{"demo.EvilObjectB", {{"val2", std::string("rm -rf /")}}, {}};
  spec.root = "a";
  ExecutionResult result = w.vm->deserialize(instantiate(spec));
  EXPECT_TRUE(result.attack_succeeded("java.lang.Runtime#exec/1"));
}

TEST(Vm, UntaintedSinkArgumentIsNotAnAttack) {
  // Call exec with a constant directly (not via deserialization): the hit is
  // recorded but the trigger is unsatisfied.
  jir::ProgramBuilder pb;
  pb.with_core_classes();
  auto runtime = pb.add_class("java.lang.Runtime");
  runtime.method("exec").param("java.lang.String").returns("void").set_native();
  auto cls = pb.add_class("t.Direct");
  cls.method("go")
      .set_static()
      .returns("void")
      .const_str("cmd", "ls")
      .new_object("rt", "java.lang.Runtime")
      .invoke_virtual("", "rt", "java.lang.Runtime", "exec", {"cmd"})
      .ret();
  World w = make_world(pb.build());
  ExecutionResult result = w.vm->run("t.Direct", "go", VmValue::null(), {});
  ASSERT_EQ(result.sink_hits.size(), 1u);
  EXPECT_FALSE(result.sink_hits[0].trigger_satisfied);
  EXPECT_FALSE(result.attack_succeeded());
}

TEST(Vm, GuardBrokenChainFails) {
  // The chain passes through `if (this.mode == 42)` but mode cannot be 42:
  // the readObject path overwrites it. The static analyses report this chain
  // (path-insensitive); the VM proves it ineffective — a Tabby false
  // positive reproduced.
  jir::ProgramBuilder pb;
  pb.with_core_classes();
  auto runtime = pb.add_class("java.lang.Runtime");
  runtime.method("exec").param("java.lang.String").returns("void").set_native();
  auto cls = pb.add_class("t.Guarded");
  cls.serializable();
  cls.field("cmd", "java.lang.String");
  cls.field("mode", "int");
  cls.method("readObject")
      .param("java.io.ObjectInputStream")
      .returns("void")
      .const_int("zero", 0)
      .field_store("@this", "mode", "zero")  // resets whatever the attacker set
      .field_load("m", "@this", "mode")
      .const_int("magic", 42)
      .if_cmp("m", jir::CmpOp::Ne, "magic", "out")
      .field_load("c", "@this", "cmd")
      .new_object("rt", "java.lang.Runtime")
      .invoke_virtual("", "rt", "java.lang.Runtime", "exec", {"c"})
      .mark("out")
      .ret();
  World w = make_world(pb.build());

  ObjectGraphSpec spec;
  spec.objects["g"] = ObjectSpec{
      "t.Guarded", {{"cmd", std::string("evil")}, {"mode", std::int64_t{42}}}, {}};
  spec.root = "g";
  ExecutionResult result = w.vm->deserialize(instantiate(spec));
  EXPECT_TRUE(result.completed) << result.fault;
  EXPECT_TRUE(result.sink_hits.empty());
  EXPECT_FALSE(result.attack_succeeded());
}

TEST(Vm, GuardPassableChainSucceeds) {
  // Same guard but the field is honoured: setting mode = 42 fires the sink.
  jir::ProgramBuilder pb;
  pb.with_core_classes();
  auto runtime = pb.add_class("java.lang.Runtime");
  runtime.method("exec").param("java.lang.String").returns("void").set_native();
  auto cls = pb.add_class("t.Guarded2");
  cls.serializable();
  cls.field("cmd", "java.lang.String");
  cls.field("mode", "int");
  cls.method("readObject")
      .param("java.io.ObjectInputStream")
      .returns("void")
      .field_load("m", "@this", "mode")
      .const_int("magic", 42)
      .if_cmp("m", jir::CmpOp::Ne, "magic", "out")
      .field_load("c", "@this", "cmd")
      .new_object("rt", "java.lang.Runtime")
      .invoke_virtual("", "rt", "java.lang.Runtime", "exec", {"c"})
      .mark("out")
      .ret();
  World w = make_world(pb.build());

  ObjectGraphSpec spec;
  spec.objects["g"] = ObjectSpec{
      "t.Guarded2", {{"cmd", std::string("evil")}, {"mode", std::int64_t{42}}}, {}};
  spec.root = "g";
  EXPECT_TRUE(w.vm->deserialize(instantiate(spec)).attack_succeeded());
}

TEST(Vm, VirtualDispatchPicksDynamicType) {
  jir::ProgramBuilder pb;
  pb.with_core_classes();
  auto base = pb.add_class("t.Base");
  base.method("tag").returns("java.lang.String").const_str("s", "base").ret("s");
  auto derived = pb.add_class("t.Derived");
  derived.extends("t.Base");
  derived.method("tag").returns("java.lang.String").const_str("s", "derived").ret("s");
  auto driver = pb.add_class("t.Driver");
  driver.method("callTag")
      .set_static()
      .param("t.Base")
      .returns("java.lang.String")
      .invoke_virtual("r", "@p1", "t.Base", "tag", {})
      .ret("r");
  World w = make_world(pb.build());

  ObjectPtr obj = std::make_shared<Object>("t.Derived");
  ExecutionResult result =
      w.vm->run("t.Driver", "callTag", VmValue::null(), {VmValue::of(obj)});
  EXPECT_TRUE(result.completed);
  // No direct way to read the return, so use a sink-free behavioural check:
  // dispatch correctness is covered by the chain tests; here we simply
  // require clean completion through the override.
}

TEST(Vm, NpeAbortsExecution) {
  jir::ProgramBuilder pb;
  pb.with_core_classes();
  auto cls = pb.add_class("t.Npe");
  cls.method("go")
      .set_static()
      .returns("void")
      .const_null("x")
      .invoke_virtual("", "x", "java.lang.Object", "toString", {})
      .ret();
  World w = make_world(pb.build());
  ExecutionResult result = w.vm->run("t.Npe", "go", VmValue::null(), {});
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.fault.find("NPE"), std::string::npos);
}

TEST(Vm, ThrowAbortsExecution) {
  jir::ProgramBuilder pb;
  pb.with_core_classes();
  auto cls = pb.add_class("t.Thrower");
  cls.method("go").set_static().returns("void").new_object("e", "java.lang.Exception")
      .throw_value("e").ret();
  World w = make_world(pb.build());
  ExecutionResult result = w.vm->run("t.Thrower", "go", VmValue::null(), {});
  EXPECT_FALSE(result.completed);
}

TEST(Vm, InfiniteLoopHitsStepBudget) {
  jir::ProgramBuilder pb;
  pb.with_core_classes();
  auto cls = pb.add_class("t.Loop");
  cls.method("go").set_static().returns("void").mark("head").jump("head");
  VmOptions options;
  options.max_steps = 1000;
  World w = make_world(pb.build(), options);
  ExecutionResult result = w.vm->run("t.Loop", "go", VmValue::null(), {});
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.fault.find("step budget"), std::string::npos);
}

TEST(Vm, UnboundedRecursionHitsDepthBudget) {
  jir::ProgramBuilder pb;
  pb.with_core_classes();
  auto cls = pb.add_class("t.Rec");
  cls.method("go").set_static().returns("void").invoke_static("", "t.Rec", "go", {}).ret();
  VmOptions options;
  options.max_call_depth = 16;
  World w = make_world(pb.build(), options);
  ExecutionResult result = w.vm->run("t.Rec", "go", VmValue::null(), {});
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.fault.find("depth"), std::string::npos);
}

TEST(Vm, ArraysStoreAndLoad) {
  jir::ProgramBuilder pb;
  pb.with_core_classes();
  auto runtime = pb.add_class("java.lang.Runtime");
  runtime.method("exec").param("java.lang.String").returns("void").set_native();
  auto cls = pb.add_class("t.Arr");
  cls.serializable();
  cls.field("payload", "java.lang.Object[]");
  cls.method("readObject")
      .param("java.io.ObjectInputStream")
      .returns("void")
      .field_load("arr", "@this", "payload")
      .const_int("i", 0)
      .array_load("cmd", "arr", "i")
      .new_object("rt", "java.lang.Runtime")
      .invoke_virtual("", "rt", "java.lang.Runtime", "exec", {"cmd"})
      .ret();
  World w = make_world(pb.build());

  ObjectGraphSpec spec;
  spec.objects["root"] = ObjectSpec{"t.Arr", {{"payload", Ref{"arr"}}}, {}};
  spec.objects["arr"] = ObjectSpec{"java.lang.Object[]", {}, {std::string("evil-cmd")}};
  spec.root = "root";
  EXPECT_TRUE(w.vm->deserialize(instantiate(spec)).attack_succeeded());
}

TEST(Vm, MissingSourceMethodReported) {
  World w = make_world(testing::urldns_program());
  ObjectPtr plain = std::make_shared<Object>("java.net.URLStreamHandler");
  ExecutionResult result = w.vm->deserialize(plain);
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.fault.find("no deserialization source"), std::string::npos);
}

TEST(Vm, TaintGraphMarksEverythingReachable) {
  ObjectGraphSpec spec;
  spec.objects["a"] = ObjectSpec{"t.A", {{"next", Ref{"b"}}, {"s", std::string("x")}}, {}};
  spec.objects["b"] = ObjectSpec{"t.B", {{"back", Ref{"a"}}}, {std::int64_t{7}}};
  spec.root = "a";
  ObjectPtr root = instantiate(spec);
  Interpreter::taint_graph(root);  // must terminate despite the cycle
  EXPECT_TRUE(root->get_field("s").tainted);
  const ObjectPtr* b = root->get_field("next").object();
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE((*b)->elements()[0].tainted);
  EXPECT_TRUE((*b)->get_field("back").tainted);
}

TEST(Vm, ArrayGrowthBudgetBoundsAdversarialStores) {
  // A store at an absurd index must abort with a Budget fault instead of
  // materialising a gigabyte of null slots.
  jir::ProgramBuilder pb;
  pb.with_core_classes();
  auto cls = pb.add_class("t.Grow");
  cls.method("go")
      .set_static()
      .param("java.lang.Object[]")
      .returns("void")
      .const_int("i", std::int64_t{1} << 30)
      .const_int("v", 7)
      .array_store("@p1", "i", "v")
      .ret();
  World w = make_world(pb.build());
  ObjectPtr arr = std::make_shared<Object>("java.lang.Object[]");
  ExecutionResult result = w.vm->run("t.Grow", "go", VmValue::null(), {VmValue::of(arr)});
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.fault_kind, FaultKind::Budget);
  EXPECT_NE(result.fault.find("array growth budget"), std::string::npos) << result.fault;
  EXPECT_TRUE(arr->elements().empty());  // nothing was allocated
}

TEST(Vm, StringByteBudgetBoundsConstantMaterialisation) {
  jir::ProgramBuilder pb;
  pb.with_core_classes();
  auto cls = pb.add_class("t.Str");
  cls.method("go").set_static().returns("void").const_str("s", std::string(64, 'x')).ret();
  VmOptions options;
  options.max_string_bytes = 8;
  World w = make_world(pb.build(), options);
  ExecutionResult result = w.vm->run("t.Str", "go", VmValue::null(), {});
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.fault_kind, FaultKind::Budget);
  EXPECT_NE(result.fault.find("string byte budget"), std::string::npos) << result.fault;
}

TEST(Vm, ExpiredDeadlineAbortsWithATimeoutFault) {
  // The clock is polled every 256 steps, so an already-expired deadline
  // stops an otherwise-infinite loop within the first poll window.
  jir::ProgramBuilder pb;
  pb.with_core_classes();
  auto cls = pb.add_class("t.Spin");
  cls.method("go").set_static().returns("void").mark("head").jump("head");
  VmOptions options;
  options.deadline = util::Deadline::after(std::chrono::milliseconds(0));
  World w = make_world(pb.build(), options);
  ExecutionResult result = w.vm->run("t.Spin", "go", VmValue::null(), {});
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.fault_kind, FaultKind::Timeout);
  EXPECT_NE(result.fault.find("wall-clock budget"), std::string::npos) << result.fault;
  EXPECT_LE(result.steps, 512u);
}

TEST(Vm, FaultKindsSeparateNegativeEvidenceFromInconclusiveOutcomes) {
  // The verify post-pass maps Modeled/Setup to REFUTED and Budget/Timeout/
  // Fault to UNCONFIRMED — this pins the classification at the VM boundary.
  {
    jir::ProgramBuilder pb;
    pb.with_core_classes();
    auto cls = pb.add_class("t.Npe2");
    cls.method("go").set_static().returns("void").const_null("x")
        .invoke_virtual("", "x", "java.lang.Object", "toString", {}).ret();
    World w = make_world(pb.build());
    EXPECT_EQ(w.vm->run("t.Npe2", "go", VmValue::null(), {}).fault_kind, FaultKind::Modeled);
  }
  {
    World w = make_world(testing::urldns_program());
    ObjectPtr plain = std::make_shared<Object>("java.net.URLStreamHandler");
    EXPECT_EQ(w.vm->deserialize(plain).fault_kind, FaultKind::Setup);
  }
  {
    jir::ProgramBuilder pb;
    pb.with_core_classes();
    auto cls = pb.add_class("t.Loop2");
    cls.method("go").set_static().returns("void").mark("head").jump("head");
    VmOptions options;
    options.max_steps = 100;
    World w = make_world(pb.build(), options);
    EXPECT_EQ(w.vm->run("t.Loop2", "go", VmValue::null(), {}).fault_kind, FaultKind::Budget);
  }
  {
    jir::ProgramBuilder pb;
    pb.with_core_classes();
    auto cls = pb.add_class("t.Bad");
    cls.method("go").set_static().returns("void").jump("nowhere");
    World w = make_world(pb.build());
    ExecutionResult result = w.vm->run("t.Bad", "go", VmValue::null(), {});
    EXPECT_EQ(result.fault_kind, FaultKind::Fault);  // malformed body, not evidence
  }
  {
    World w = make_world(testing::urldns_program());
    util::failpoint::arm();
    util::failpoint::activate("runtime.step", 1);
    ObjectGraphSpec spec;
    spec.objects["map"] = ObjectSpec{"java.util.HashMap", {{"key", Ref{"url"}}}, {}};
    spec.objects["url"] = ObjectSpec{"java.net.URL", {{"host", std::string("h")}}, {}};
    spec.root = "map";
    ExecutionResult result = w.vm->deserialize(instantiate(spec));
    util::failpoint::deactivate_all();
    util::failpoint::disarm();
    EXPECT_EQ(result.fault_kind, FaultKind::Fault);
    EXPECT_NE(result.fault.find("interpreter fault injected"), std::string::npos) << result.fault;
  }
}

TEST(Vm, FuzzedObjectGraphsNeverCrashTheInterpreter) {
  // Seeded never-crash sweep: random (frequently nonsensical) object graphs
  // driven through deserialize() and random direct calls must always come
  // back as a structured ExecutionResult — the crash-isolation story starts
  // with the VM not throwing on garbage input.
  const char* class_pool[] = {"java.util.HashMap", "java.net.URL",  "java.net.URLStreamHandler",
                              "demo.EvilObjectA",  "demo.NoSuch",   "java.lang.Object[]",
                              "demo.EvilObjectB",  "java.util.EnumMap"};
  const char* field_pool[] = {"key", "host", "handler", "val1", "val2", "next", "ghost"};
  const char* method_pool[] = {"readObject", "hashCode", "perform", "toString", "nope"};

  std::uint64_t state = 0x5eed5eed5eed5eedULL;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };

  World urldns = make_world(testing::urldns_program());
  World evil = make_world(testing::evil_object_program());
  for (int iter = 0; iter < 200; ++iter) {
    World& w = (next() % 2 == 0) ? urldns : evil;

    ObjectGraphSpec spec;
    std::size_t object_count = 1 + next() % 5;
    std::vector<std::string> names;
    for (std::size_t i = 0; i < object_count; ++i) names.push_back("o" + std::to_string(i));
    for (std::size_t i = 0; i < object_count; ++i) {
      ObjectSpec obj;
      obj.class_name = class_pool[next() % std::size(class_pool)];
      std::size_t field_count = next() % 4;
      for (std::size_t f = 0; f < field_count; ++f) {
        const char* field = field_pool[next() % std::size(field_pool)];
        switch (next() % 4) {
          case 0: obj.fields[field] = std::int64_t(next()); break;
          case 1: obj.fields[field] = std::string("s") + std::to_string(next() % 100); break;
          case 2: obj.fields[field] = Ref{names[next() % names.size()]}; break;  // cycles OK
          default: obj.fields[field] = std::monostate{}; break;
        }
      }
      if (next() % 3 == 0) obj.elements.push_back(Ref{names[next() % names.size()]});
      spec.objects[names[i]] = std::move(obj);
    }
    spec.root = (next() % 8 == 0) ? "missing" : names[next() % names.size()];

    VmOptions tight;
    tight.max_steps = 2000;
    tight.max_call_depth = 16;
    Interpreter vm(w.program, *w.hierarchy, tight);
    EXPECT_NO_THROW({
      ExecutionResult r = vm.deserialize(instantiate(spec));
      EXPECT_TRUE(r.completed || !r.fault.empty());  // aborts always say why
    }) << "iteration " << iter;

    ObjectPtr receiver = (next() % 4 == 0)
                             ? nullptr
                             : std::make_shared<Object>(class_pool[next() % std::size(class_pool)]);
    EXPECT_NO_THROW(vm.run(class_pool[next() % std::size(class_pool)],
                           method_pool[next() % std::size(method_pool)],
                           receiver ? VmValue::of(receiver) : VmValue::null(),
                           {VmValue::of(std::int64_t(next()))}))
        << "iteration " << iter;
  }
}

TEST(ObjectGraph, UndefinedRefBecomesNull) {
  ObjectGraphSpec spec;
  spec.objects["a"] = ObjectSpec{"t.A", {{"x", Ref{"ghost"}}}, {}};
  spec.root = "a";
  ObjectPtr root = instantiate(spec);
  ASSERT_NE(root, nullptr);
  EXPECT_TRUE(root->get_field("x").is_null());
}

TEST(ObjectGraph, EmptySpecYieldsNull) {
  EXPECT_EQ(instantiate(ObjectGraphSpec{}), nullptr);
  ObjectGraphSpec bad_root;
  bad_root.objects["a"] = ObjectSpec{"t.A", {}, {}};
  bad_root.root = "missing";
  EXPECT_EQ(instantiate(bad_root), nullptr);
}

}  // namespace
}  // namespace tabby::runtime
