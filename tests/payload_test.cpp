// Tests for automatic payload synthesis and chain auto-verification (§V-C
// future work, implemented here): reported chains must be confirmed or
// refuted by the VM without consulting ground truth — and that verdict must
// agree with the planted ground truth across the entire corpus.
#include <gtest/gtest.h>

#include "corpus/components.hpp"
#include "cpg/builder.hpp"
#include "evalkit/evalkit.hpp"
#include "finder/finder.hpp"
#include "finder/payload.hpp"
#include "fixtures.hpp"

namespace tabby::finder {
namespace {

TEST(Payload, SynthesizesUrldnsRecipe) {
  jir::Program program = testing::urldns_program();
  cpg::Cpg cpg = cpg::build_cpg(program);
  GadgetChainFinder finder(cpg.db);
  auto chains = finder.find_all().chains;
  ASSERT_EQ(chains.size(), 1u);

  PayloadResult payload = synthesize_payload(program, cpg.db, chains[0]);
  EXPECT_TRUE(payload.complete) << (payload.notes.empty() ? "" : payload.notes[0]);
  // Root is a HashMap whose key field holds a URL.
  ASSERT_FALSE(payload.recipe.root.empty());
  const auto& root = payload.recipe.objects.at(payload.recipe.root);
  EXPECT_EQ(root.class_name, "java.util.HashMap");
  ASSERT_TRUE(root.fields.count("key"));
  const auto* ref = std::get_if<runtime::Ref>(&root.fields.at("key"));
  ASSERT_NE(ref, nullptr);
  EXPECT_EQ(payload.recipe.objects.at(ref->name).class_name, "java.net.URL");
}

TEST(Payload, AutoVerifyConfirmsUrldns) {
  jir::Program program = testing::urldns_program();
  cpg::Cpg cpg = cpg::build_cpg(program);
  GadgetChainFinder finder(cpg.db);
  auto chains = finder.find_all().chains;
  ASSERT_EQ(chains.size(), 1u);
  AutoVerifyResult verdict = auto_verify(program, cpg.db, chains[0]);
  EXPECT_TRUE(verdict.effective);
  EXPECT_TRUE(verdict.execution.attack_succeeded("java.net.InetAddress#getByName/1"));
}

TEST(Payload, AutoVerifyConfirmsEvilObject) {
  jir::Program program = testing::evil_object_program();
  cpg::Cpg cpg = cpg::build_cpg(program);
  GadgetChainFinder finder(cpg.db);
  for (const GadgetChain& chain : finder.find_all().chains) {
    if (chain.source_signature() != "demo.EvilObjectA#readObject/1") continue;
    AutoVerifyResult verdict = auto_verify(program, cpg.db, chain);
    EXPECT_TRUE(verdict.effective) << chain.to_string();
  }
}

TEST(Payload, RefutesGuardedChain) {
  // Build a component known to contain guarded fakes and check each Tabby
  // chain matching a guarded source is refuted.
  corpus::Component component = corpus::build_component("BeanShell1");
  jir::Program program = component.link();
  cpg::Cpg cpg = cpg::build_cpg(program);
  GadgetChainFinder finder(cpg.db);
  int refuted = 0;
  for (const GadgetChain& chain : finder.find_all().chains) {
    if (chain.source_signature().find("GuardedGadget") == std::string::npos) continue;
    AutoVerifyResult verdict = auto_verify(program, cpg.db, chain);
    EXPECT_FALSE(verdict.effective) << chain.to_string();
    ++refuted;
  }
  EXPECT_EQ(refuted, 2);  // BeanShell1 plants two guarded fakes
}

/// The flagship property: across every Table IX component, the VM verdict on
/// each Tabby-reported chain must agree with the planted ground truth.
class AutoVerifyAgreement : public ::testing::TestWithParam<std::string> {};

TEST_P(AutoVerifyAgreement, MatchesGroundTruth) {
  corpus::Component component = corpus::build_component(GetParam());
  jir::Program program = component.link();
  cpg::Cpg cpg = cpg::build_cpg(program);
  GadgetChainFinder finder(cpg.db);

  for (const GadgetChain& chain : finder.find_all().chains) {
    bool in_truth = false;
    for (const auto& truth : component.truths) {
      if (truth.source_signature == chain.source_signature() &&
          truth.sink_signature == chain.sink_signature()) {
        in_truth = true;
        break;
      }
    }
    AutoVerifyResult verdict = auto_verify(program, cpg.db, chain);
    EXPECT_EQ(verdict.effective, in_truth)
        << GetParam() << ": auto-verify disagrees with ground truth for\n"
        << chain.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(AllComponents, AutoVerifyAgreement,
                         ::testing::ValuesIn(corpus::component_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

TEST(Payload, IncompleteChainsAreFlagged) {
  jir::Program program = testing::urldns_program();
  cpg::Cpg cpg = cpg::build_cpg(program);
  GadgetChain bogus;
  bogus.signatures = {"ghost.Class#readObject/1"};
  PayloadResult payload = synthesize_payload(program, cpg.db, bogus);
  EXPECT_FALSE(payload.complete);
  EXPECT_FALSE(payload.notes.empty());
}

}  // namespace
}  // namespace tabby::finder
