// Tests for the synthetic corpus: structural sanity of every component and
// scene, determinism, validation, and — crucially — VM verification of the
// planted ground truth (every real chain fires, every fake is refuted).
#include <gtest/gtest.h>

#include "corpus/components.hpp"
#include "corpus/jdk.hpp"
#include "corpus/noise.hpp"
#include "corpus/scenes.hpp"
#include "evalkit/evalkit.hpp"
#include "jir/printer.hpp"
#include "jir/validate.hpp"

namespace tabby::corpus {
namespace {

TEST(Jdk, BaseArchiveIsWellFormed) {
  jar::Archive base = jdk_base_archive();
  EXPECT_EQ(base.meta.name, "jdk-base");
  jir::Program program = jar::link({base});
  EXPECT_TRUE(jir::validate(program).empty());
  EXPECT_NE(program.find_class("java.lang.Runtime"), nullptr);
  EXPECT_NE(program.find_class("javax.naming.Context"), nullptr);
}

TEST(Jdk, SinkSignaturesResolve) {
  for (SinkFlavor flavor : kAllSinkFlavors) {
    EXPECT_FALSE(sink_signature(flavor).empty());
  }
}

TEST(Components, TableIXHas26Rows) {
  EXPECT_EQ(component_names().size(), 26u);
}

TEST(Components, DatasetTotalsMatchTableIX) {
  // "Known in dataset" sums to 38 across the table.
  std::size_t dataset_total = 0;
  for (const std::string& name : component_names()) {
    dataset_total += build_component(name).known_in_dataset();
  }
  EXPECT_EQ(dataset_total, 38u);
}

TEST(Components, UnknownNameThrows) {
  EXPECT_THROW(build_component("NoSuchLib"), std::invalid_argument);
}

TEST(Components, BuildIsDeterministic) {
  Component a = build_component("C3P0");
  Component b = build_component("C3P0");
  EXPECT_EQ(jar::write_archive(a.jar), jar::write_archive(b.jar));
  ASSERT_EQ(a.truths.size(), b.truths.size());
  for (std::size_t i = 0; i < a.truths.size(); ++i) {
    EXPECT_EQ(a.truths[i].source_signature, b.truths[i].source_signature);
  }
}

TEST(Components, EveryComponentValidates) {
  for (const std::string& name : component_names()) {
    Component component = build_component(name);
    jir::Program program = component.link();
    auto issues = jir::validate(program);
    EXPECT_TRUE(issues.empty()) << name << ": " << issues.front().to_string();
  }
}

TEST(Components, GroundTruthVerifiesInTheVm) {
  // Every real recipe fires its sink, every fake attempt is refuted — the
  // corpus-wide self-check that makes the Table IX classification honest.
  for (const std::string& name : component_names()) {
    Component component = build_component(name);
    jir::Program program = component.link();
    evalkit::VerificationOutcome outcome =
        evalkit::verify_ground_truth(program, component.truths, component.fakes);
    EXPECT_TRUE(outcome.all_good())
        << name << ": " << (outcome.failures.empty() ? "count mismatch" : outcome.failures[0]);
  }
}

TEST(Scenes, TableXHas5Rows) {
  EXPECT_EQ(scene_names().size(), 5u);
}

TEST(Scenes, JarCountsMatchTableX) {
  struct Expected {
    const char* name;
    std::size_t jars;
  };
  const Expected expected[] = {
      {"Spring", 66}, {"JDK8", 19}, {"Tomcat", 25}, {"Jetty", 67}, {"Apache Dubbo", 15}};
  for (const Expected& e : expected) {
    Scene scene = build_scene(e.name);
    EXPECT_EQ(scene.jar_count(), e.jars) << e.name;
  }
}

TEST(Scenes, SpringContainsTableXIChains) {
  Scene spring = build_scene("Spring");
  jir::Program program = spring.link();
  EXPECT_NE(program.find_class("org.springframework.aop.target.LazyInitTargetSource"), nullptr);
  EXPECT_NE(program.find_class("org.springframework.aop.target.PrototypeTargetSource"), nullptr);
  EXPECT_NE(program.find_class("org.springframework.jndi.support.SimpleJndiBeanFactory"), nullptr);
  // Three JNDI chains among the truths.
  std::size_t jndi = 0;
  for (const auto& truth : spring.truths) {
    if (truth.sink_signature == "javax.naming.Context#lookup/1") ++jndi;
  }
  EXPECT_GE(jndi, 3u);
}

TEST(Scenes, GroundTruthVerifiesInTheVm) {
  for (const std::string& name : scene_names()) {
    Scene scene = build_scene(name);
    jir::Program program = scene.link();
    evalkit::VerificationOutcome outcome =
        evalkit::verify_ground_truth(program, scene.truths, scene.fakes);
    EXPECT_TRUE(outcome.all_good())
        << name << ": " << (outcome.failures.empty() ? "count mismatch" : outcome.failures[0]);
  }
}

TEST(Noise, DeterministicAndSized) {
  jar::Archive a = make_noise_archive("n.jar", "noise.pkg", 50, 7);
  jar::Archive b = make_noise_archive("n.jar", "noise.pkg", 50, 7);
  EXPECT_EQ(jar::write_archive(a), jar::write_archive(b));
  EXPECT_EQ(a.classes.size(), 50u + 50u / 20u);  // classes + interfaces
}

TEST(Noise, ValidatesAsProgram) {
  jar::Archive archive = make_noise_archive("n.jar", "noise.pkg", 80, 11);
  jir::Program program = jar::link({jdk_base_archive(), archive});
  auto issues = jir::validate(program);
  EXPECT_TRUE(issues.empty()) << (issues.empty() ? "" : issues.front().to_string());
}

TEST(Noise, ScaledCorpusReachesTarget) {
  std::size_t actual = 0;
  auto jars = make_scaled_corpus(200'000, 3, &actual);
  EXPECT_GE(actual, 200'000u);
  EXPECT_FALSE(jars.empty());
  // No duplicate class names across jars (packages are distinct).
  jir::Program linked = jar::link(jars);
  std::size_t classes = 0;
  for (const auto& jar : jars) classes += jar.classes.size();
  EXPECT_EQ(linked.class_count(), classes);
}

}  // namespace
}  // namespace tabby::corpus
