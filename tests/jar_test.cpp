// Tests for the TJAR binary archive substrate: round trips, classpath
// linking semantics, and robustness against corrupt/truncated input.
#include <gtest/gtest.h>

#include <filesystem>

#include "jar/archive.hpp"
#include "jir/builder.hpp"
#include "jir/printer.hpp"
#include "util/rng.hpp"

namespace tabby::jar {
namespace {

Archive sample_archive() {
  jir::ProgramBuilder pb;
  pb.with_core_classes();
  auto cls = pb.add_class("demo.Sample");
  cls.serializable();
  cls.field("data", "java.lang.Object");
  auto m = cls.method("readObject").param("java.io.ObjectInputStream").returns("void");
  m.field_load("v", "@this", "data");
  m.const_str("s", "payload");
  m.if_cmp("v", jir::CmpOp::Ne, "s", "end");
  m.invoke_virtual("r", "v", "java.lang.Object", "toString", {});
  m.mark("end");
  m.ret();
  jir::Program p = pb.build();

  Archive a;
  a.meta.name = "demo-sample";
  a.meta.version = "1.2.3";
  a.classes = p.classes();
  return a;
}

TEST(Archive, RoundTripPreservesEverything) {
  Archive original = sample_archive();
  auto bytes = write_archive(original);
  auto reread = read_archive(bytes);
  ASSERT_TRUE(reread.ok()) << reread.error().to_string();

  EXPECT_EQ(reread.value().meta.name, "demo-sample");
  EXPECT_EQ(reread.value().meta.version, "1.2.3");
  ASSERT_EQ(reread.value().classes.size(), original.classes.size());

  // Compare via the canonical text rendering.
  for (std::size_t i = 0; i < original.classes.size(); ++i) {
    EXPECT_EQ(jir::to_text(reread.value().classes[i]), jir::to_text(original.classes[i]));
  }
}

TEST(Archive, EmptyArchiveRoundTrips) {
  Archive empty;
  empty.meta.name = "empty";
  auto reread = read_archive(write_archive(empty));
  ASSERT_TRUE(reread.ok());
  EXPECT_TRUE(reread.value().classes.empty());
}

TEST(Archive, FileRoundTrip) {
  Archive original = sample_archive();
  auto path = std::filesystem::temp_directory_path() / "tabby_test.tjar";
  ASSERT_TRUE(write_archive_file(original, path).ok());
  auto reread = read_archive_file(path);
  ASSERT_TRUE(reread.ok()) << reread.error().to_string();
  EXPECT_EQ(reread.value().meta.name, original.meta.name);
  std::filesystem::remove(path);
}

TEST(Archive, MissingFileFails) {
  auto result = read_archive_file("/nonexistent/path/file.tjar");
  EXPECT_FALSE(result.ok());
}

TEST(Archive, BadMagicRejected) {
  auto bytes = write_archive(sample_archive());
  bytes[0] = std::byte{0x00};
  EXPECT_FALSE(read_archive(bytes).ok());
}

TEST(Archive, UnsupportedVersionRejected) {
  auto bytes = write_archive(sample_archive());
  bytes[4] = std::byte{0xFF};  // version low byte
  EXPECT_FALSE(read_archive(bytes).ok());
}

TEST(Archive, EveryTruncationFailsCleanly) {
  auto bytes = write_archive(sample_archive());
  // Chop at a spread of prefixes; the reader must return an Error (never
  // crash or accept).
  for (std::size_t len = 0; len < bytes.size(); len += 7) {
    std::span<const std::byte> prefix(bytes.data(), len);
    EXPECT_FALSE(read_archive(prefix).ok()) << "prefix length " << len;
  }
}

TEST(Archive, RandomByteFlipsNeverCrash) {
  auto bytes = write_archive(sample_archive());
  util::Rng rng(0xF00D);
  for (int trial = 0; trial < 300; ++trial) {
    auto corrupted = bytes;
    std::size_t pos = rng.next_below(corrupted.size());
    corrupted[pos] = std::byte{static_cast<unsigned char>(rng.next_u64())};
    auto result = read_archive(corrupted);  // outcome may be ok or error
    if (result.ok()) {
      // If it parsed, the class list must at least be structurally sane.
      for (const auto& cls : result.value().classes) EXPECT_FALSE(cls.name.empty());
    }
  }
}

TEST(Archive, TrailingGarbageRejected) {
  auto bytes = write_archive(sample_archive());
  bytes.push_back(std::byte{0x01});
  EXPECT_FALSE(read_archive(bytes).ok());
}

TEST(Link, FirstArchiveWinsOnDuplicates) {
  jir::ProgramBuilder pb1;
  auto c1 = pb1.add_class("demo.Dup");
  c1.field("fromFirst", "int");
  Archive a1;
  a1.meta.name = "first";
  a1.classes = pb1.build().classes();

  jir::ProgramBuilder pb2;
  auto c2 = pb2.add_class("demo.Dup");
  c2.field("fromSecond", "int");
  auto c3 = pb2.add_class("demo.Unique");
  Archive a2;
  a2.meta.name = "second";
  a2.classes = pb2.build().classes();

  std::size_t skipped = 0;
  jir::Program linked = link({a1, a2}, &skipped);
  EXPECT_EQ(skipped, 1u);
  EXPECT_EQ(linked.class_count(), 2u);
  const jir::ClassDecl* dup = linked.find_class("demo.Dup");
  ASSERT_NE(dup, nullptr);
  ASSERT_EQ(dup->fields.size(), 1u);
  EXPECT_EQ(dup->fields[0].name, "fromFirst");
}

TEST(Link, EmptyClasspathYieldsEmptyProgram) {
  jir::Program p = link({});
  EXPECT_EQ(p.class_count(), 0u);
}

TEST(Archive, MethodCountHelper) {
  Archive a = sample_archive();
  EXPECT_EQ(a.method_count(),
            [&] {
              std::size_t n = 0;
              for (const auto& c : a.classes) n += c.methods.size();
              return n;
            }());
}

}  // namespace
}  // namespace tabby::jar
