// Tests for the cache self-repair satellite: cache::audit_cache and the
// `tabby cache` subcommand. A bit-flipped fragment or snapshot must be
// detected against its digest, reported with reclaimable bytes, prunable,
// and — the payoff — the next analysis run rebuilds ONLY the pruned entry,
// warm-starting everything else from the surviving fragments.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cache/cache.hpp"
#include "cli/cli.hpp"
#include "corpus/components.hpp"
#include "jar/archive.hpp"
#include "util/digest.hpp"

namespace tabby {
namespace {

namespace fs = std::filesystem;

struct CliRun {
  int code = 0;
  std::string out;
  std::string err;
};

CliRun run(std::vector<std::string> args) {
  std::ostringstream out, err;
  CliRun result;
  result.code = cli::run_cli(args, out, err);
  result.out = out.str();
  result.err = err.str();
  return result;
}

void flip_byte(const fs::path& path, std::size_t offset) {
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(file.good()) << path;
  file.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  file.get(byte);
  file.seekp(static_cast<std::streamoff>(offset));
  file.put(static_cast<char>(byte ^ 0x5a));
}

std::vector<fs::path> files_in(const fs::path& dir) {
  std::vector<fs::path> files;
  if (!fs::exists(dir)) return files;
  for (const auto& entry : fs::directory_iterator(dir)) files.push_back(entry.path());
  return files;
}

class CacheAuditFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / ("tabby_cache_audit_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
    jar1_ = (dir_ / "one.tjar").string();
    jar2_ = (dir_ / "two.tjar").string();
    ASSERT_TRUE(jar::write_archive_file(corpus::build_component("BeanShell1").jar, jar1_).ok());
    ASSERT_TRUE(jar::write_archive_file(corpus::build_component("Rome").jar, jar2_).ok());
    cache_ = (dir_ / "cache").string();
    // Warm the cache: two fragments and one whole-classpath snapshot.
    CliRun cold = run({"analyze", jar1_, jar2_, "--cache", cache_});
    ASSERT_EQ(cold.code, 0) << cold.err;
    fragments_ = files_in(fs::path(cache_) / "fragments");
    snapshots_ = files_in(fs::path(cache_) / "snapshots");
    ASSERT_EQ(fragments_.size(), 2u);
    ASSERT_EQ(snapshots_.size(), 1u);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
  std::string jar1_, jar2_, cache_;
  std::vector<fs::path> fragments_, snapshots_;
};

TEST_F(CacheAuditFixture, CleanStoreAuditsClean) {
  auto report = cache::audit_cache(cache_, /*prune=*/false);
  ASSERT_TRUE(report.ok()) << report.error().message;
  EXPECT_TRUE(report.value().clean());
  EXPECT_EQ(report.value().fragments_checked, 2u);
  EXPECT_EQ(report.value().snapshots_checked, 1u);
  EXPECT_EQ(report.value().reclaimable_bytes, 0u);

  CliRun cli = run({"cache", cache_});
  EXPECT_EQ(cli.code, 0) << cli.out;
}

TEST_F(CacheAuditFixture, MissingDirectoryIsAnError) {
  auto report = cache::audit_cache(dir_ / "nonexistent", false);
  EXPECT_FALSE(report.ok());
  CliRun cli = run({"cache", (dir_ / "nonexistent").string()});
  EXPECT_EQ(cli.code, 1);
}

TEST_F(CacheAuditFixture, BitFlipIsDetectedWithReclaimableBytes) {
  flip_byte(fragments_[0], fs::file_size(fragments_[0]) / 2);
  auto report = cache::audit_cache(cache_, /*prune=*/false);
  ASSERT_TRUE(report.ok()) << report.error().message;
  EXPECT_FALSE(report.value().clean());
  EXPECT_EQ(report.value().corrupt, 1u);
  EXPECT_EQ(report.value().reclaimable_bytes, fs::file_size(fragments_[0]));
  // Audit without --prune is read-only.
  EXPECT_EQ(report.value().reclaimed_bytes, 0u);
  EXPECT_TRUE(fs::exists(fragments_[0]));

  CliRun cli = run({"cache", cache_});
  EXPECT_EQ(cli.code, 3);
  EXPECT_NE(cli.out.find("corrupt"), std::string::npos) << cli.out;
  EXPECT_NE(cli.out.find("reclaimable"), std::string::npos) << cli.out;
}

TEST_F(CacheAuditFixture, OrphanedTempFilesAreFlagged) {
  std::ofstream(fs::path(cache_) / "fragments" / "orphan.tmp") << "leftover";
  std::ofstream(fs::path(cache_) / "snapshots" / "junk.bin") << "noise";
  auto report = cache::audit_cache(cache_, false);
  ASSERT_TRUE(report.ok()) << report.error().message;
  EXPECT_EQ(report.value().orphaned, 2u);
  EXPECT_EQ(report.value().corrupt, 0u);
}

TEST_F(CacheAuditFixture, PruneHealsAndOnlyThePrunedFragmentRebuilds) {
  // Corrupt one fragment AND the snapshot: with the snapshot intact a warm
  // run never touches fragments, so rebuilding-only-the-pruned-one needs
  // the snapshot out of the way too.
  flip_byte(fragments_[0], fs::file_size(fragments_[0]) / 2);
  flip_byte(snapshots_[0], fs::file_size(snapshots_[0]) - 8);

  CliRun pruned = run({"cache", cache_, "--prune"});
  EXPECT_EQ(pruned.code, 0) << pruned.out;  // healed store = success
  EXPECT_NE(pruned.out.find("[pruned]"), std::string::npos) << pruned.out;
  EXPECT_NE(pruned.out.find("reclaimed"), std::string::npos) << pruned.out;
  EXPECT_FALSE(fs::exists(fragments_[0]));
  EXPECT_FALSE(fs::exists(snapshots_[0]));
  EXPECT_TRUE(fs::exists(fragments_[1])) << "prune touched an intact entry";

  // The next run self-heals: the surviving fragment warm-starts, only the
  // pruned one is recomputed, and the snapshot republishes.
  CliRun rebuilt = run({"analyze", jar1_, jar2_, "--cache", cache_});
  EXPECT_EQ(rebuilt.code, 0) << rebuilt.err;
  EXPECT_NE(rebuilt.out.find("snapshot miss"), std::string::npos) << rebuilt.out;
  EXPECT_NE(rebuilt.out.find("fragments 1/2 hit"), std::string::npos) << rebuilt.out;

  auto report = cache::audit_cache(cache_, false);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().clean()) << report.value().to_string();
  EXPECT_EQ(report.value().fragments_checked, 2u);
  EXPECT_EQ(report.value().snapshots_checked, 1u);
}

TEST_F(CacheAuditFixture, VerdictFramesRoundTripAndRejectKeyMismatches) {
  auto opened = cache::AnalysisCache::open(cache_);
  ASSERT_TRUE(opened.ok()) << opened.error().message;
  cache::AnalysisCache& store = opened.value();

  cache::CachedVerdict verdict;
  verdict.verdict = 1;  // REFUTED
  verdict.reason = 0;
  verdict.steps = 42;
  verdict.detail = "guard not taken";
  ASSERT_TRUE(store.store_verdict(0xabc123, verdict).ok());

  auto loaded = store.load_verdict(0xabc123);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->verdict, verdict.verdict);
  EXPECT_EQ(loaded->reason, verdict.reason);
  EXPECT_EQ(loaded->steps, verdict.steps);
  EXPECT_EQ(loaded->detail, verdict.detail);
  EXPECT_FALSE(store.load_verdict(0xdef456).has_value());

  // A frame copied to another key's slot (collision, tampering) misses: the
  // embedded key must match the requested one.
  fs::path verdicts = fs::path(cache_) / "verdicts";
  fs::copy_file(verdicts / (util::digest_hex(0xabc123) + ".tvdt"),
                verdicts / (util::digest_hex(0xdef456) + ".tvdt"));
  EXPECT_FALSE(store.load_verdict(0xdef456).has_value());
}

TEST_F(CacheAuditFixture, CorruptVerdictFrameIsDetectedAndPruned) {
  {
    auto opened = cache::AnalysisCache::open(cache_);
    ASSERT_TRUE(opened.ok()) << opened.error().message;
    cache::CachedVerdict verdict;
    verdict.verdict = 0;
    verdict.steps = 7;
    ASSERT_TRUE(opened.value().store_verdict(0x77, verdict).ok());
  }

  auto clean = cache::audit_cache(cache_, /*prune=*/false);
  ASSERT_TRUE(clean.ok());
  EXPECT_TRUE(clean.value().clean());
  EXPECT_EQ(clean.value().verdicts_checked, 1u);
  EXPECT_NE(clean.value().to_string().find("1 verdict(s)"), std::string::npos)
      << clean.value().to_string();

  std::vector<fs::path> frames = files_in(fs::path(cache_) / "verdicts");
  ASSERT_EQ(frames.size(), 1u);
  flip_byte(frames[0], fs::file_size(frames[0]) / 2);

  auto report = cache::audit_cache(cache_, false);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().corrupt, 1u);
  EXPECT_EQ(report.value().reclaimable_bytes, fs::file_size(frames[0]));

  CliRun pruned = run({"cache", cache_, "--prune"});
  EXPECT_EQ(pruned.code, 0) << pruned.out;
  EXPECT_FALSE(fs::exists(frames[0]));
  auto healed = cache::audit_cache(cache_, false);
  ASSERT_TRUE(healed.ok());
  EXPECT_TRUE(healed.value().clean());
  EXPECT_EQ(healed.value().verdicts_checked, 0u);
}

TEST_F(CacheAuditFixture, CacheFlagFormAndUsageErrors) {
  CliRun flagged = run({"cache", "--cache", cache_});
  EXPECT_EQ(flagged.code, 0) << flagged.out;
  CliRun missing = run({"cache"});
  EXPECT_EQ(missing.code, 2);
  CliRun extra = run({"cache", cache_, cache_});
  EXPECT_EQ(extra.code, 2);
}

}  // namespace
}  // namespace tabby
