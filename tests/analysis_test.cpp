// Tests for the controllability analysis (§III-C): the weight/origin domain,
// Formula 2 (calc), every Table IV transfer rule, and — most importantly —
// the paper's own worked example from Figure 5, asserted end to end
// (PP = [∞,∞,2] and the exact Action of `exchange`).
#include <gtest/gtest.h>

#include "analysis/controllability.hpp"
#include "analysis/domain.hpp"
#include "jir/builder.hpp"
#include "jir/hierarchy.hpp"

namespace tabby::analysis {
namespace {

using jir::CmpOp;

struct Analyzed {
  jir::Program program;
  std::unique_ptr<jir::Hierarchy> hierarchy;
  std::unique_ptr<ControllabilityAnalysis> analysis;
};

Analyzed analyze(jir::ProgramBuilder& pb, AnalysisOptions options = {}) {
  Analyzed a;
  a.program = pb.build();
  a.hierarchy = std::make_unique<jir::Hierarchy>(a.program);
  a.analysis = std::make_unique<ControllabilityAnalysis>(a.program, *a.hierarchy, options);
  return a;
}

const MethodSummary& summary_of(Analyzed& a, std::string_view cls, std::string_view name,
                                int nargs) {
  auto id = a.program.find_method(cls, name, nargs);
  EXPECT_TRUE(id.has_value()) << cls << "#" << name;
  return a.analysis->summary(*id);
}

// --- Domain -----------------------------------------------------------------

TEST(Domain, WeightsOfOrigins) {
  EXPECT_EQ(Origin::unknown().weight(), kUncontrollable);
  EXPECT_EQ(Origin::this_origin().weight(), 0);
  EXPECT_EQ(Origin::this_origin("f").weight(), 0);
  EXPECT_EQ(Origin::param_origin(3).weight(), 3);
  EXPECT_EQ(Origin::param_origin(3, "f").weight(), 3);
  EXPECT_TRUE(is_controllable(0));
  EXPECT_FALSE(is_controllable(kUncontrollable));
}

TEST(Domain, OriginToStringAndParseRoundTrip) {
  for (const Origin& o : {Origin::unknown(), Origin::this_origin(), Origin::this_origin("x"),
                          Origin::param_origin(2), Origin::param_origin(12, "field")}) {
    EXPECT_EQ(Origin::parse(o.to_string()), o) << o.to_string();
  }
  EXPECT_EQ(Origin::parse("garbage"), Origin::unknown());
}

TEST(Domain, MemberCollapsesAtDepthOne) {
  Origin base = Origin::param_origin(1);
  Origin f = base.member("a");
  EXPECT_EQ(f.field, "a");
  EXPECT_EQ(f.member("b").field, "a");  // depth-1 collapse keeps first field
}

TEST(Domain, MergePicksMoreControllable) {
  Origin p2 = Origin::param_origin(2);
  Origin t = Origin::this_origin();
  Origin u = Origin::unknown();
  EXPECT_EQ(merge(p2, t), t);   // 0 beats 2
  EXPECT_EQ(merge(u, p2), p2);  // 2 beats ∞
  EXPECT_EQ(merge(p2, u), p2);
}

TEST(Domain, ActionStringsRoundTrip) {
  Action a;
  a.set("final-param-1", Origin::param_origin(1));
  a.set("final-param-1.b", Origin::param_origin(2));
  a.set("return", Origin::param_origin(2));
  a.set("this", Origin::unknown());
  Action b = Action::from_strings(a.to_strings());
  EXPECT_EQ(a, b);
}

TEST(Domain, CalcFollowsFigure5) {
  // Action of exchange (Fig. 5(b)).
  Action action;
  action.set("final-param-1", Origin::param_origin(1));
  action.set("final-param-1.b", Origin::param_origin(2));
  action.set("final-param-2", Origin::unknown());
  action.set("return", Origin::param_origin(2));
  action.set("this", Origin::unknown());

  // in (Fig. 5(d)).
  InWeights in{{"this", kUncontrollable},
               {"init-param-1", kUncontrollable},
               {"init-param-2", 2}};

  auto out = calc(action, in);
  EXPECT_EQ(out.at("this"), kUncontrollable);
  EXPECT_EQ(out.at("final-param-1"), kUncontrollable);
  EXPECT_EQ(out.at("final-param-1.b"), 2);
  EXPECT_EQ(out.at("final-param-2"), kUncontrollable);
  EXPECT_EQ(out.at("return"), 2);
}

TEST(Domain, PpHelpers) {
  PollutedPosition pp{kUncontrollable, kUncontrollable, 2};
  EXPECT_EQ(pp_to_string(pp), "[∞,∞,2]");
  EXPECT_FALSE(all_uncontrollable(pp));
  EXPECT_TRUE(all_uncontrollable({kUncontrollable, kUncontrollable}));
  EXPECT_FALSE(all_uncontrollable({0}));
}

// --- Figure 5: the paper's worked example ------------------------------------

Analyzed figure5() {
  jir::ProgramBuilder pb;
  pb.with_core_classes();
  auto a_cls = pb.add_class("demo.A");
  a_cls.field("b", "demo.B");
  auto b_cls = pb.add_class("demo.B");
  // public static B exchange(A a, B b) { a.b = b; b = new B(); return a.b; }
  b_cls.method("exchange")
      .set_static()
      .param("demo.A")
      .param("demo.B")
      .returns("demo.B")
      .field_store("@p1", "b", "@p2")
      .new_object("@p2", "demo.B")
      .field_load("r", "@p1", "b")
      .ret("r");
  // public A example(A a, B b) { A a1 = new A(); A a2 = a; a = a1;
  //                              B b1 = B.exchange(a, b); return a2; }
  auto holder = pb.add_class("demo.Holder");
  holder.method("example")
      .param("demo.A")
      .param("demo.B")
      .returns("demo.A")
      .new_object("a1", "demo.A")
      .assign("a2", "@p1")
      .assign("@p1", "a1")
      .invoke_static("b1", "demo.B", "exchange", {"@p1", "@p2"})
      .ret("a2");
  return analyze(pb);
}

TEST(Figure5, ExchangeActionMatchesPaper) {
  Analyzed a = figure5();
  const Action& action = summary_of(a, "demo.B", "exchange", 2).action;
  EXPECT_EQ(action.entries.at("final-param-1"), Origin::param_origin(1));
  EXPECT_EQ(action.entries.at("final-param-1.b"), Origin::param_origin(2));
  EXPECT_EQ(action.entries.at("final-param-2"), Origin::unknown());
  EXPECT_EQ(action.entries.at("return"), Origin::param_origin(2));
  EXPECT_EQ(action.entries.at("this"), Origin::unknown());
}

TEST(Figure5, ExamplePollutedPositionIsInfInf2) {
  Analyzed a = figure5();
  const MethodSummary& s = summary_of(a, "demo.Holder", "example", 2);
  ASSERT_EQ(s.call_sites.size(), 1u);
  const CallSite& site = s.call_sites[0];
  EXPECT_EQ(site.declared.name, "exchange");
  ASSERT_EQ(site.pp.size(), 3u);
  EXPECT_EQ(site.pp[0], kUncontrollable);  // static receiver
  EXPECT_EQ(site.pp[1], kUncontrollable);  // a rebound to new A()
  EXPECT_EQ(site.pp[2], 2);                // b is init-param-2
}

TEST(Figure5, ExampleReturnIsControllableParam1) {
  Analyzed a = figure5();
  const Action& action = summary_of(a, "demo.Holder", "example", 2).action;
  // "the example method will return the a2 variable (the content of the
  // original method parameter a), making it a controllable variable."
  EXPECT_EQ(action.entries.at("return"), Origin::param_origin(1));
  // After correct(): the caller's b became uncontrollable, and a.b points to
  // init-param-2.
  EXPECT_EQ(action.entries.at("final-param-2"), Origin::unknown());
  EXPECT_EQ(action.entries.at("final-param-1"), Origin::unknown());
  EXPECT_EQ(action.entries.at("final-param-1.b"), Origin::param_origin(2));
}

// --- Table IV transfer rules, one test per row --------------------------------

TEST(TableIV, OriginalAssignmentPropagates) {
  jir::ProgramBuilder pb;
  auto cls = pb.add_class("t.C");
  cls.method("m").param("t.X").returns("t.X").assign("a", "@p1").ret("a");
  Analyzed a = analyze(pb);
  EXPECT_EQ(summary_of(a, "t.C", "m", 1).action.entries.at("return"), Origin::param_origin(1));
}

TEST(TableIV, NewDestroysControllability) {
  jir::ProgramBuilder pb;
  auto cls = pb.add_class("t.C");
  cls.method("m").param("t.X").returns("t.X").assign("a", "@p1").new_object("a", "t.X").ret("a");
  Analyzed a = analyze(pb);
  EXPECT_EQ(summary_of(a, "t.C", "m", 1).action.entries.at("return"), Origin::unknown());
}

TEST(TableIV, ClassPropertyAssignmentAndLoad) {
  jir::ProgramBuilder pb;
  auto cls = pb.add_class("t.C");
  cls.field("f", "t.X");
  cls.method("m")
      .param("t.X")
      .returns("t.X")
      .field_store("@this", "f", "@p1")
      .field_load("r", "@this", "f")
      .ret("r");
  Analyzed a = analyze(pb);
  const Action& action = summary_of(a, "t.C", "m", 1).action;
  EXPECT_EQ(action.entries.at("return"), Origin::param_origin(1));
  EXPECT_EQ(action.entries.at("this.f"), Origin::param_origin(1));
}

TEST(TableIV, UnassignedThisFieldIsCallerControllable) {
  jir::ProgramBuilder pb;
  auto cls = pb.add_class("t.C");
  cls.field("f", "t.X");
  cls.method("m").returns("t.X").field_load("r", "@this", "f").ret("r");
  Analyzed a = analyze(pb);
  // this.f without assignment: weight 0 ("comes from the caller class or
  // class property").
  EXPECT_EQ(summary_of(a, "t.C", "m", 0).action.entries.at("return").weight(), 0);
}

TEST(TableIV, StaticPropertyAssignmentAndLoad) {
  jir::ProgramBuilder pb;
  auto cls = pb.add_class("t.C");
  cls.field("sf", "t.X", /*is_static=*/true);
  cls.method("m")
      .set_static()
      .param("t.X")
      .returns("t.X")
      .static_store("t.C", "sf", "@p1")
      .static_load("r", "t.C", "sf")
      .ret("r");
  Analyzed a = analyze(pb);
  EXPECT_EQ(summary_of(a, "t.C", "m", 1).action.entries.at("return"), Origin::param_origin(1));
}

TEST(TableIV, UnassignedStaticIsUncontrollable) {
  jir::ProgramBuilder pb;
  auto cls = pb.add_class("t.C");
  cls.method("m").set_static().returns("t.X").static_load("r", "t.Other", "sf").ret("r");
  Analyzed a = analyze(pb);
  EXPECT_EQ(summary_of(a, "t.C", "m", 0).action.entries.at("return"), Origin::unknown());
}

TEST(TableIV, ArrayStoreAndLoad) {
  jir::ProgramBuilder pb;
  auto cls = pb.add_class("t.C");
  cls.method("m")
      .set_static()
      .param("t.X[]")
      .param("t.X")
      .returns("t.X")
      .const_int("i", 0)
      .array_store("@p1", "i", "@p2")
      .array_load("r", "@p1", "i")
      .ret("r");
  Analyzed a = analyze(pb);
  EXPECT_EQ(summary_of(a, "t.C", "m", 2).action.entries.at("return"), Origin::param_origin(2));
}

TEST(TableIV, ArrayLoadFromParamIsControllable) {
  jir::ProgramBuilder pb;
  auto cls = pb.add_class("t.C");
  cls.method("m")
      .set_static()
      .param("t.X[]")
      .returns("t.X")
      .const_int("i", 0)
      .array_load("r", "@p1", "i")
      .ret("r");
  Analyzed a = analyze(pb);
  EXPECT_EQ(summary_of(a, "t.C", "m", 1).action.entries.at("return").weight(), 1);
}

TEST(TableIV, CastPreservesControllability) {
  jir::ProgramBuilder pb;
  auto cls = pb.add_class("t.C");
  cls.method("m").set_static().param("t.X").returns("t.Y").cast("r", "t.Y", "@p1").ret("r");
  Analyzed a = analyze(pb);
  EXPECT_EQ(summary_of(a, "t.C", "m", 1).action.entries.at("return"), Origin::param_origin(1));
}

TEST(TableIV, ConstantsAreUncontrollable) {
  jir::ProgramBuilder pb;
  auto cls = pb.add_class("t.C");
  cls.method("m").set_static().returns("java.lang.String").const_str("r", "cmd").ret("r");
  Analyzed a = analyze(pb);
  EXPECT_EQ(summary_of(a, "t.C", "m", 0).action.entries.at("return"), Origin::unknown());
}

TEST(TableIV, MethodCallAssignmentUsesCalleeReturn) {
  jir::ProgramBuilder pb;
  auto cls = pb.add_class("t.C");
  cls.method("id").set_static().param("t.X").returns("t.X").ret("@p1");
  cls.method("m")
      .set_static()
      .param("t.X")
      .returns("t.X")
      .invoke_static("r", "t.C", "id", {"@p1"})
      .ret("r");
  Analyzed a = analyze(pb);
  EXPECT_EQ(summary_of(a, "t.C", "m", 1).action.entries.at("return").weight(), 1);
}

TEST(TableIV, CalleeCanDestroyArgumentControllability) {
  jir::ProgramBuilder pb;
  auto cls = pb.add_class("t.C");
  // wipe(x) rebinds its param; the paper's correct() propagates that wipe
  // into the caller frame (Fig. 5(d): caller's b becomes ∞).
  cls.method("wipe").set_static().param("t.X").returns("void").new_object("@p1", "t.X").ret();
  cls.method("m")
      .set_static()
      .param("t.X")
      .returns("t.X")
      .invoke_static("", "t.C", "wipe", {"@p1"})
      .ret("@p1");
  Analyzed a = analyze(pb);
  EXPECT_EQ(summary_of(a, "t.C", "m", 1).action.entries.at("return"), Origin::unknown());
}

// --- Control flow ------------------------------------------------------------

TEST(ControlFlow, JoinMergesOptimistically) {
  jir::ProgramBuilder pb;
  auto cls = pb.add_class("t.C");
  // r = param on one branch, constant on the other: the merge keeps the
  // controllable origin (the paper's false-positive source).
  cls.method("m")
      .set_static()
      .param("t.X")
      .param("int")
      .returns("t.X")
      .const_int("zero", 0)
      .const_null("r")
      .if_cmp("@p2", CmpOp::Eq, "zero", "takeparam")
      .jump("end")
      .mark("takeparam")
      .assign("r", "@p1")
      .mark("end")
      .ret("r");
  Analyzed a = analyze(pb);
  EXPECT_EQ(summary_of(a, "t.C", "m", 2).action.entries.at("return"), Origin::param_origin(1));
}

TEST(ControlFlow, LoopConverges) {
  jir::ProgramBuilder pb;
  auto cls = pb.add_class("t.C");
  cls.method("m")
      .set_static()
      .param("t.X")
      .returns("t.X")
      .assign("r", "@p1")
      .mark("head")
      .const_int("c", 1)
      .const_int("d", 2)
      .if_cmp("c", CmpOp::Eq, "d", "out")
      .assign("r", "r")
      .jump("head")
      .mark("out")
      .ret("r");
  Analyzed a = analyze(pb);
  EXPECT_EQ(summary_of(a, "t.C", "m", 1).action.entries.at("return"), Origin::param_origin(1));
}

TEST(ControlFlow, MultipleReturnsMerge) {
  jir::ProgramBuilder pb;
  auto cls = pb.add_class("t.C");
  cls.method("m")
      .set_static()
      .param("t.X")
      .returns("t.X")
      .const_int("c", 1)
      .const_int("d", 2)
      .const_null("k")
      .if_cmp("c", CmpOp::Eq, "d", "other")
      .ret("@p1")
      .mark("other")
      .ret("k");
  Analyzed a = analyze(pb);
  // Most controllable across returns wins.
  EXPECT_EQ(summary_of(a, "t.C", "m", 1).action.entries.at("return"), Origin::param_origin(1));
}

// --- Interprocedural machinery ------------------------------------------------

TEST(Interprocedural, RecursionTerminatesWithIdentityBottom) {
  jir::ProgramBuilder pb;
  auto cls = pb.add_class("t.C");
  cls.method("rec")
      .set_static()
      .param("t.X")
      .returns("t.X")
      .invoke_static("r", "t.C", "rec", {"@p1"})
      .ret("r");
  Analyzed a = analyze(pb);
  const Action& action = summary_of(a, "t.C", "rec", 1).action;
  (void)action;  // termination is the primary assertion
  SUCCEED();
}

TEST(Interprocedural, MutualRecursionTerminates) {
  jir::ProgramBuilder pb;
  auto cls = pb.add_class("t.C");
  cls.method("ping").set_static().param("t.X").returns("t.X")
      .invoke_static("r", "t.C", "pong", {"@p1"}).ret("r");
  cls.method("pong").set_static().param("t.X").returns("t.X")
      .invoke_static("r", "t.C", "ping", {"@p1"}).ret("r");
  Analyzed a = analyze(pb);
  summary_of(a, "t.C", "ping", 1);
  SUCCEED();
}

TEST(Interprocedural, SummariesAreCached) {
  jir::ProgramBuilder pb;
  auto cls = pb.add_class("t.C");
  cls.method("leaf").set_static().param("t.X").returns("t.X").ret("@p1");
  cls.method("c1").set_static().param("t.X").returns("t.X")
      .invoke_static("r", "t.C", "leaf", {"@p1"}).ret("r");
  cls.method("c2").set_static().param("t.X").returns("t.X")
      .invoke_static("r", "t.C", "leaf", {"@p1"}).ret("r");
  Analyzed a = analyze(pb);
  summary_of(a, "t.C", "c1", 1);
  summary_of(a, "t.C", "c2", 1);
  EXPECT_GE(a.analysis->cache_hits(), 1u);  // leaf analyzed once, hit once
}

TEST(Interprocedural, UnknownCalleeReturnUncontrollableByDefault) {
  jir::ProgramBuilder pb;
  auto cls = pb.add_class("t.C");
  cls.method("m").set_static().param("t.X").returns("t.X")
      .invoke_static("r", "ghost.Lib", "mystery", {"@p1"}).ret("r");
  Analyzed a = analyze(pb);
  EXPECT_EQ(summary_of(a, "t.C", "m", 1).action.entries.at("return"), Origin::unknown());
}

TEST(Interprocedural, UnknownCalleePermissiveOption) {
  jir::ProgramBuilder pb;
  auto cls = pb.add_class("t.C");
  cls.method("m").set_static().param("t.X").returns("t.X")
      .invoke_static("r", "ghost.Lib", "mystery", {"@p1"}).ret("r");
  AnalysisOptions options;
  options.unknown_return_controllable = true;
  Analyzed a = analyze(pb, options);
  EXPECT_EQ(summary_of(a, "t.C", "m", 1).action.entries.at("return").weight(), 1);
}

TEST(Interprocedural, IntraproceduralModeIgnoresCalleeBodies) {
  jir::ProgramBuilder pb;
  auto cls = pb.add_class("t.C");
  cls.method("wipe").set_static().param("t.X").returns("void").new_object("@p1", "t.X").ret();
  cls.method("m").set_static().param("t.X").returns("t.X")
      .invoke_static("", "t.C", "wipe", {"@p1"}).ret("@p1");
  AnalysisOptions options;
  options.interprocedural = false;
  Analyzed a = analyze(pb, options);
  // Without interprocedural analysis the wipe is invisible: param stays
  // controllable — the imprecision the paper pins on prior tools.
  EXPECT_EQ(summary_of(a, "t.C", "m", 1).action.entries.at("return").weight(), 1);
}

TEST(Interprocedural, PpRecordedPerCallSite) {
  jir::ProgramBuilder pb;
  auto cls = pb.add_class("t.C");
  cls.field("f", "t.X");
  cls.method("sinkish").param("t.X").returns("void").ret();
  cls.method("m")
      .param("t.X")
      .returns("void")
      .field_load("own", "@this", "f")
      .const_null("k")
      .invoke_virtual("", "@this", "t.C", "sinkish", {"@p1"})
      .invoke_virtual("", "@this", "t.C", "sinkish", {"own"})
      .invoke_virtual("", "@this", "t.C", "sinkish", {"k"})
      .ret();
  Analyzed a = analyze(pb);
  const auto& sites = summary_of(a, "t.C", "m", 1).call_sites;
  ASSERT_EQ(sites.size(), 3u);
  EXPECT_EQ(sites[0].pp, (PollutedPosition{0, 1}));
  EXPECT_EQ(sites[1].pp, (PollutedPosition{0, 0}));
  EXPECT_EQ(sites[2].pp, (PollutedPosition{0, kUncontrollable}));
}

TEST(Interprocedural, AbstractMethodGetsIdentityAction) {
  jir::ProgramBuilder pb;
  auto iface = pb.add_interface("t.I");
  iface.method("doIt").param("t.X").returns("t.X").set_abstract();
  Analyzed a = analyze(pb);
  const Action& action = summary_of(a, "t.I", "doIt", 1).action;
  EXPECT_EQ(action.entries.at("final-param-1"), Origin::param_origin(1));
}

}  // namespace
}  // namespace tabby::analysis
