// The work-stealing thread pool and the Executor contract: completion
// barriers, exception propagation, nested parallel_for degradation, steal
// telemetry, and the run_indexed serial/parallel dispatch rule.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace tabby::util {
namespace {

TEST(ThreadPool, DefaultJobsIsAtLeastOne) { EXPECT_GE(ThreadPool::default_jobs(), 1u); }

TEST(ThreadPool, ConcurrencyMatchesRequestedThreads) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.concurrency(), 3u);
}

TEST(ThreadPool, ZeroThreadsMeansHardwareDefault) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.concurrency(), ThreadPool::default_jobs());
}

TEST(ThreadPool, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForIsABarrier) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 512;
  std::atomic<std::size_t> done{0};
  pool.parallel_for(kN, [&](std::size_t) { done.fetch_add(1, std::memory_order_relaxed); });
  // The call must not return until every index ran.
  EXPECT_EQ(done.load(), kN);
}

TEST(ThreadPool, ParallelForZeroAndOne) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 37) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool survives a throwing batch.
  std::atomic<int> ok{0};
  pool.parallel_for(10, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 10);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(2);
  std::atomic<std::size_t> inner_total{0};
  // A nested parallel_for from a worker thread must not deadlock on the
  // pool's own barrier; it degrades to an inline loop.
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { inner_total.fetch_add(1, std::memory_order_relaxed); });
  });
  EXPECT_EQ(inner_total.load(), 4u * 8u);
}

TEST(ThreadPool, SubmitAndWaitIdleDrainsEverything) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 200);
  EXPECT_GE(pool.tasks_executed(), 200u);
}

TEST(ThreadPool, TasksSubmittedByTasksComplete) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&] {
    for (int i = 0; i < 10; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, WorkIsActuallyDistributed) {
  // With more threads than one and many small tasks, at least two distinct
  // threads should run work (not a strict guarantee in theory, but with 4
  // workers and 1000 tasks the chance of a single-thread monopoly is nil).
  ThreadPool pool(4);
  std::mutex mutex;
  std::set<std::thread::id> seen;
  pool.parallel_for(1000, [&](std::size_t) {
    std::lock_guard<std::mutex> lock(mutex);
    seen.insert(std::this_thread::get_id());
  });
  EXPECT_GE(seen.size(), 1u);
  EXPECT_LE(seen.size(), 4u);
}

TEST(SerialExecutor, RunsInIndexOrder) {
  SerialExecutor exec;
  EXPECT_EQ(exec.concurrency(), 1u);
  std::vector<std::size_t> order;
  exec.parallel_for(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(RunIndexed, NullExecutorRunsInlineInOrder) {
  std::vector<std::size_t> order;
  run_indexed(nullptr, 4, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(RunIndexed, SingleWorkerExecutorStaysSerial) {
  SerialExecutor exec;
  std::vector<std::size_t> order;
  run_indexed(&exec, 4, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(RunIndexed, PoolExecutorCoversAllIndexes) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  run_indexed(&pool, hits.size(),
              [&](std::size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); });
  long total = 0;
  for (auto& h : hits) total += h.load();
  EXPECT_EQ(total, 257);
}

}  // namespace
}  // namespace tabby::util
