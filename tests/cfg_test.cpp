// Tests for the control-flow-graph substrate (the Soot role): block
// splitting, branch edges, reverse post-order and reachability.
#include <gtest/gtest.h>

#include "cfg/cfg.hpp"
#include "jir/builder.hpp"

namespace tabby::cfg {
namespace {

jir::Method build_method(const std::function<void(jir::MethodBuilder&)>& fill) {
  jir::ProgramBuilder pb;
  auto cls = pb.add_class("demo.C");
  auto m = cls.method("m").returns("void");
  fill(m);
  jir::Program p = pb.build();
  return p.find_class("demo.C")->methods[0];
}

TEST(Cfg, StraightLineIsOneBlock) {
  jir::Method m = build_method([](jir::MethodBuilder& b) {
    b.const_int("x", 1).const_int("y", 2).assign("z", "x").ret();
  });
  ControlFlowGraph g(m);
  ASSERT_EQ(g.blocks().size(), 1u);
  EXPECT_EQ(g.blocks()[0].size(), 4u);
  EXPECT_TRUE(g.blocks()[0].successors.empty());
}

TEST(Cfg, EmptyBodyHasNoBlocks) {
  jir::Method m = build_method([](jir::MethodBuilder&) {});
  ControlFlowGraph g(m);
  EXPECT_TRUE(g.blocks().size() == 0u);
  EXPECT_EQ(g.entry(), kNoBlock);
  EXPECT_TRUE(g.reverse_post_order().empty());
}

TEST(Cfg, IfSplitsIntoDiamond) {
  // if x == y goto L; <then-fallthrough>; label L; return
  jir::Method m = build_method([](jir::MethodBuilder& b) {
    b.const_int("x", 1)
        .const_int("y", 1)
        .if_cmp("x", jir::CmpOp::Eq, "y", "skip")
        .assign("z", "x")
        .mark("skip")
        .ret();
  });
  ControlFlowGraph g(m);
  // Blocks: [consts+if], [assign], [label+return]
  ASSERT_EQ(g.blocks().size(), 3u);
  EXPECT_EQ(g.blocks()[0].successors.size(), 2u);
  EXPECT_EQ(g.blocks()[1].successors.size(), 1u);
  EXPECT_EQ(g.blocks()[2].successors.size(), 0u);
  EXPECT_EQ(g.blocks()[2].predecessors.size(), 2u);
  EXPECT_TRUE(g.is_conditional(1));
  EXPECT_FALSE(g.is_conditional(0));
}

TEST(Cfg, LoopBackEdge) {
  jir::Method m = build_method([](jir::MethodBuilder& b) {
    b.const_int("i", 0)
        .mark("head")
        .const_int("n", 10)
        .if_cmp("i", jir::CmpOp::Ge, "n", "done")
        .assign("i", "n")
        .jump("head")
        .mark("done")
        .ret();
  });
  ControlFlowGraph g(m);
  // A back edge exists: some block's successor has a lower id.
  bool has_back_edge = false;
  for (const BasicBlock& block : g.blocks()) {
    for (BlockId succ : block.successors) {
      if (succ <= block.id) has_back_edge = true;
    }
  }
  EXPECT_TRUE(has_back_edge);
}

TEST(Cfg, ReturnTerminatesBlock) {
  jir::Method m = build_method([](jir::MethodBuilder& b) {
    b.ret();
    b.const_int("dead", 1);  // unreachable
    b.ret();
  });
  ControlFlowGraph g(m);
  ASSERT_EQ(g.blocks().size(), 2u);
  EXPECT_TRUE(g.blocks()[0].successors.empty());
  auto reach = g.reachable();
  EXPECT_TRUE(reach[0]);
  EXPECT_FALSE(reach[1]);
}

TEST(Cfg, GotoToUnknownLabelIsDeadEnd) {
  // The validator flags this; the CFG must still not crash.
  jir::Method m = build_method([](jir::MethodBuilder& b) { b.jump("nowhere"); });
  ControlFlowGraph g(m);
  ASSERT_EQ(g.blocks().size(), 1u);
  EXPECT_TRUE(g.blocks()[0].successors.empty());
}

TEST(Cfg, ReversePostOrderStartsAtEntry) {
  jir::Method m = build_method([](jir::MethodBuilder& b) {
    b.const_int("x", 1)
        .const_int("y", 2)
        .if_cmp("x", jir::CmpOp::Eq, "y", "a")
        .jump("b")
        .mark("a")
        .jump("end")
        .mark("b")
        .jump("end")
        .mark("end")
        .ret();
  });
  ControlFlowGraph g(m);
  auto order = g.reverse_post_order();
  ASSERT_FALSE(order.empty());
  EXPECT_EQ(order.front(), g.entry());
  // Every block is reachable here, so RPO covers all blocks.
  EXPECT_EQ(order.size(), g.blocks().size());
  // The join block ("end") comes after both branches.
  EXPECT_EQ(order.back(), g.blocks().size() - 1);
}

TEST(Cfg, ThrowEndsBlockWithoutSuccessors) {
  jir::Method m = build_method([](jir::MethodBuilder& b) {
    b.new_object("e", "java.lang.RuntimeException").throw_value("e");
  });
  ControlFlowGraph g(m);
  ASSERT_EQ(g.blocks().size(), 1u);
  EXPECT_TRUE(g.blocks()[0].successors.empty());
}

TEST(Cfg, ToStringMentionsEveryBlock) {
  jir::Method m = build_method([](jir::MethodBuilder& b) {
    b.const_int("x", 1).const_int("y", 1).if_cmp("x", jir::CmpOp::Eq, "y", "l").mark("l").ret();
  });
  ControlFlowGraph g(m);
  std::string dump = g.to_string();
  for (const BasicBlock& block : g.blocks()) {
    EXPECT_NE(dump.find("B" + std::to_string(block.id)), std::string::npos);
  }
}

}  // namespace
}  // namespace tabby::cfg
