// Shared JIR fixtures mirroring the paper's running examples:
//  - Figure 1: EvilObjectA/EvilObjectB (readObject -> toString -> exec)
//  - Figure 3: the URLDNS chain (HashMap.readObject -> ... -> getByName)
// The corpus module ships richer models; these are the minimal versions the
// unit tests reason about by hand.
#pragma once

#include "jir/builder.hpp"
#include "jir/model.hpp"

namespace tabby::testing {

/// Figure 1: EvilObjectA.readObject() reads val1 and calls toString();
/// EvilObjectB.toString() runs Runtime.exec(val2.toString()).
inline jir::Program evil_object_program() {
  jir::ProgramBuilder pb;
  pb.with_core_classes();

  auto runtime = pb.add_class("java.lang.Runtime");
  runtime.method("getRuntime").set_static().returns("java.lang.Runtime")
      .new_object("r", "java.lang.Runtime").ret("r");
  runtime.method("exec").param("java.lang.String").returns("java.lang.Process").set_native();

  auto a = pb.add_class("demo.EvilObjectA");
  a.serializable();
  a.field("val1", "java.lang.Object");
  a.method("readObject")
      .param("java.io.ObjectInputStream")
      .returns("void")
      .field_load("valObj", "@this", "val1")
      .invoke_virtual("s", "valObj", "java.lang.Object", "toString", {})
      .ret();

  auto b = pb.add_class("demo.EvilObjectB");
  b.serializable();
  b.field("val2", "java.lang.Object");
  b.method("toString")
      .returns("java.lang.String")
      .field_load("v2", "@this", "val2")
      .invoke_virtual("cmd", "v2", "java.lang.Object", "toString", {})
      .invoke_static("rt", "java.lang.Runtime", "getRuntime", {})
      .invoke_virtual("p", "rt", "java.lang.Runtime", "exec", {"cmd"})
      .const_str("s", "done")
      .ret("s");

  return pb.build();
}

/// Figure 3: the URLDNS gadget chain, plus the EnumMap.hashCode alias
/// dead-end the paper uses to motivate searching upwards from the sink.
inline jir::Program urldns_program() {
  jir::ProgramBuilder pb;
  pb.with_core_classes();

  auto hashmap = pb.add_class("java.util.HashMap");
  hashmap.serializable();
  hashmap.field("key", "java.lang.Object");
  hashmap.method("readObject")
      .param("java.io.ObjectInputStream")
      .returns("void")
      .field_load("k", "@this", "key")
      .invoke_virtual("h", "@this", "java.util.HashMap", "hash", {"k"})
      .ret();
  hashmap.method("hash")
      .param("java.lang.Object")
      .returns("int")
      .invoke_virtual("h", "@p1", "java.lang.Object", "hashCode", {})
      .ret("h");

  auto url = pb.add_class("java.net.URL");
  url.serializable();
  url.field("host", "java.lang.String");
  url.field("handler", "java.net.URLStreamHandler");
  url.method("hashCode")
      .returns("int")
      .field_load("hd", "@this", "handler")
      .invoke_virtual("h", "hd", "java.net.URLStreamHandler", "hashCode", {"@this"})
      .ret("h");

  auto handler = pb.add_class("java.net.URLStreamHandler");
  handler.method("hashCode")
      .param("java.net.URL")
      .returns("int")
      .invoke_virtual("addr", "@this", "java.net.URLStreamHandler", "getHostAddress", {"@p1"})
      .const_int("h", 0)
      .ret("h");
  handler.method("getHostAddress")
      .param("java.net.URL")
      .returns("java.net.InetAddress")
      .field_load("host", "@p1", "host")
      .invoke_static("a", "java.net.InetAddress", "getByName", {"host"})
      .ret("a");

  // Alias dead end: EnumMap.hashCode never reaches a sink.
  auto enummap = pb.add_class("java.util.EnumMap");
  enummap.serializable();
  enummap.method("hashCode")
      .returns("int")
      .invoke_virtual("h", "@this", "java.util.EnumMap", "entryHashCode", {})
      .ret("h");
  enummap.method("entryHashCode").returns("int").const_int("h", 17).ret("h");

  return pb.build();
}

}  // namespace tabby::testing
