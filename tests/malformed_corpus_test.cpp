// Malformed-input corpus: truncated, bit-flipped and garbage-magic .tjar
// files, plus a mid-file corruption inside the class section. Asserts the
// quarantine contract end to end — salvage keeps the clean prefix, the
// degradation report counts what was lost, the CLI maps it to exit 3 (or 1
// under --strict / total loss) — and that the surviving analysis is
// byte-identical at any --jobs count.
#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "cli/cli.hpp"
#include "corpus/components.hpp"
#include "jar/archive.hpp"
#include "pipeline/pipeline.hpp"

namespace tabby {
namespace {

namespace fs = std::filesystem;

struct CliRun {
  int code = 0;
  std::string out;
  std::string err;
};

CliRun run_cli_capture(std::vector<std::string> args) {
  std::ostringstream out, err;
  CliRun result;
  result.code = cli::run_cli(args, out, err);
  result.out = out.str();
  result.err = err.str();
  return result;
}

class MalformedCorpusFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / ("tabby_malformed_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
    clean_bytes_ = jar::write_archive(corpus::build_component("BeanShell1").jar);
    clean_path_ = write("clean.tjar", clean_bytes_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string write(const std::string& name, const std::vector<std::byte>& bytes) {
    fs::path p = dir_ / name;
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    return p.string();
  }

  std::vector<std::byte> truncated(std::size_t keep) const {
    return {clean_bytes_.begin(), clean_bytes_.begin() + static_cast<std::ptrdiff_t>(keep)};
  }

  /// A copy of the clean archive with one bit flipped, at the first offset
  /// past the middle whose flip actually breaks the strict decode (a flip
  /// that merely alters content would not be quarantined — it is
  /// indistinguishable from a different valid archive).
  std::vector<std::byte> bit_flipped_broken() const {
    for (std::size_t offset = clean_bytes_.size() / 2; offset < clean_bytes_.size(); ++offset) {
      std::vector<std::byte> bytes = clean_bytes_;
      bytes[offset] ^= std::byte{0x40};
      if (!jar::read_archive(bytes).ok()) return bytes;
    }
    ADD_FAILURE() << "no decode-breaking bit flip found";
    return clean_bytes_;
  }

  fs::path dir_;
  std::vector<std::byte> clean_bytes_;
  std::string clean_path_;
};

TEST_F(MalformedCorpusFixture, SalvageOfCleanBytesMatchesStrictDecode) {
  jar::DecodeDegradation degradation;
  jar::Archive salvaged = jar::read_archive_salvage(clean_bytes_, degradation);
  auto strict = jar::read_archive(clean_bytes_);
  ASSERT_TRUE(strict.ok());
  EXPECT_FALSE(degradation.error.has_value());
  EXPECT_EQ(degradation.bytes_skipped, 0u);
  EXPECT_EQ(salvaged.classes.size(), strict.value().classes.size());
  EXPECT_EQ(jar::write_archive(salvaged), clean_bytes_);  // bit-identical round trip
}

TEST_F(MalformedCorpusFixture, TruncatedClassSectionSalvagesThePrefix) {
  // Drop the last 10% of the stream: the envelope (header + string pool)
  // survives, the class section is cut mid-record.
  std::size_t clean_classes = jar::read_archive(clean_bytes_).value().classes.size();
  jar::DecodeDegradation degradation;
  jar::Archive salvaged =
      jar::read_archive_salvage(truncated(clean_bytes_.size() * 9 / 10), degradation);
  EXPECT_FALSE(jar::read_archive(truncated(clean_bytes_.size() * 9 / 10)).ok());
  ASSERT_TRUE(degradation.error.has_value());
  EXPECT_GT(salvaged.classes.size(), 0u);  // ...but a clean prefix was salvaged
  EXPECT_LT(salvaged.classes.size(), clean_classes);
  EXPECT_EQ(degradation.classes_kept, salvaged.classes.size());
  EXPECT_GT(degradation.classes_dropped, 0u);
}

TEST_F(MalformedCorpusFixture, GarbageMagicLosesTheWholeArchive) {
  std::vector<std::byte> garbage(64, std::byte{0xAB});
  jar::DecodeDegradation degradation;
  jar::Archive salvaged = jar::read_archive_salvage(garbage, degradation);
  ASSERT_TRUE(degradation.error.has_value());
  EXPECT_TRUE(salvaged.classes.empty());
  EXPECT_EQ(degradation.classes_kept, 0u);
}

TEST_F(MalformedCorpusFixture, QuarantineLoadKeepsTheSurvivors) {
  std::string bad = write("bad.tjar", truncated(40));
  pipeline::DegradationReport report;
  auto program = pipeline::load_program({clean_path_, bad}, /*with_jdk=*/true, nullptr,
                                        pipeline::FailurePolicy::kQuarantine, &report);
  ASSERT_TRUE(program.ok()) << program.error().to_string();
  ASSERT_EQ(report.units.size(), 1u);
  EXPECT_EQ(report.units[0].stage, "archive-decode");
  EXPECT_NE(report.units[0].unit.find("bad.tjar"), std::string::npos);
  EXPECT_GT(program.value().class_count(), 0u);

  // The same classpath fails outright under the strict policy.
  auto strict = pipeline::load_program({clean_path_, bad}, /*with_jdk=*/true, nullptr,
                                       pipeline::FailurePolicy::kStrict);
  EXPECT_FALSE(strict.ok());
}

TEST_F(MalformedCorpusFixture, AllArchivesLostFailsEvenUnderQuarantine) {
  std::string bad = write("bad.tjar", truncated(8));
  pipeline::DegradationReport report;
  auto program = pipeline::load_program({bad}, /*with_jdk=*/true, nullptr,
                                        pipeline::FailurePolicy::kQuarantine, &report);
  ASSERT_FALSE(program.ok());
  EXPECT_NE(program.error().message.find("bad.tjar"), std::string::npos);
}

TEST_F(MalformedCorpusFixture, CliExitCodesFollowTheTaxonomy) {
  std::string bad = write("bad.tjar", bit_flipped_broken());

  CliRun clean = run_cli_capture({"analyze", clean_path_});
  EXPECT_EQ(clean.code, 0);
  EXPECT_EQ(clean.err.find("degraded:"), std::string::npos);

  CliRun degraded = run_cli_capture({"analyze", clean_path_, bad});
  EXPECT_EQ(degraded.code, 3);
  EXPECT_NE(degraded.err.find("degraded:"), std::string::npos) << degraded.err;

  CliRun strict = run_cli_capture({"analyze", clean_path_, bad, "--strict"});
  EXPECT_EQ(strict.code, 1);
  EXPECT_NE(strict.err.find("error:"), std::string::npos);

  CliRun all_lost = run_cli_capture({"analyze", write("junk.tjar", truncated(4))});
  EXPECT_EQ(all_lost.code, 1);

  CliRun usage = run_cli_capture({"analyze", clean_path_, "--deadline", "nope"});
  EXPECT_EQ(usage.code, 2);
}

TEST_F(MalformedCorpusFixture, SurvivingChainsAreIdenticalAtAnyJobCount) {
  // A classpath with one bit-flipped and one truncated member: the salvage
  // decision is a pure function of the bytes, so the surviving chains (and
  // every other output byte) must not depend on worker count.
  std::string flipped = write("flipped.tjar", bit_flipped_broken());
  std::string cut = write("cut.tjar", truncated(clean_bytes_.size() / 2));

  CliRun serial = run_cli_capture({"find", clean_path_, flipped, cut, "--jobs", "1"});
  CliRun parallel = run_cli_capture({"find", clean_path_, flipped, cut, "--jobs", "4"});
  EXPECT_EQ(serial.code, 3);
  EXPECT_EQ(parallel.code, 3);
  EXPECT_EQ(serial.out, parallel.out);
  EXPECT_EQ(serial.err, parallel.err);
}

TEST_F(MalformedCorpusFixture, QuarantinedChainsAreASubsetOfCleanChains) {
  std::string cut = write("cut.tjar", truncated(clean_bytes_.size() / 2));
  CliRun clean = run_cli_capture({"find", clean_path_});
  CliRun degraded = run_cli_capture({"find", clean_path_, cut});
  EXPECT_EQ(clean.code, 0);
  EXPECT_EQ(degraded.code, 3);
  // Dropping input can only remove chains, never invent them: every chain
  // line found on the degraded classpath exists in the clean report.
  std::istringstream lines(degraded.out);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find('#') == std::string::npos) continue;  // not a signature line
    EXPECT_NE(clean.out.find(line), std::string::npos) << line;
  }
}

}  // namespace
}  // namespace tabby
