// Memory-governed finder tests on the pathological alias/CALL fan-out
// fixture (corpus/stress.hpp): under a frontier byte budget the search is
// partial-not-crash, keeps every chain found so far (a subset of the
// ungoverned run's chains), reports MemoryPressure, and stays bit-identical
// at any worker count. Without a budget the governed code paths are inert.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "corpus/jdk.hpp"
#include "corpus/stress.hpp"
#include "cpg/builder.hpp"
#include "finder/finder.hpp"
#include "graph/serialize.hpp"
#include "jar/archive.hpp"
#include "util/deadline.hpp"
#include "util/memory_budget.hpp"
#include "util/thread_pool.hpp"

namespace tabby {
namespace {

// One shared CPG for the whole suite: a scaled-down fan-out classpath (the
// CLI-sized default is for the OOM smoke job, not unit tests).
const graph::GraphDb& fixture_db() {
  static cpg::Cpg cpg = [] {
    corpus::FanoutStressSpec spec;
    spec.hops = 12;
    spec.aliases = 200;
    spec.call_fans = 4;
    jir::Program program =
        jar::link({corpus::jdk_base_archive(), corpus::fanout_stress_archive(spec)});
    return cpg::build_cpg(program, {});
  }();
  return cpg.db;
}

finder::FinderReport search(std::size_t frontier_pool, util::Executor* executor = nullptr,
                            util::MemoryBudget* memory = nullptr) {
  finder::FinderOptions options;
  options.max_depth = 16;
  options.frontier_byte_pool = frontier_pool;
  options.executor = executor;
  options.memory = memory;
  finder::GadgetChainFinder finder(fixture_db(), options);
  return finder.find_all();
}

std::set<std::string> chain_keys(const finder::FinderReport& report) {
  std::set<std::string> keys;
  for (const finder::GadgetChain& chain : report.chains) keys.insert(chain.key());
  return keys;
}

TEST(MemoryGovernance, UngovernedRunFindsTheChainAndStaysInert) {
  finder::FinderReport report = search(0);
  EXPECT_GE(report.chains.size(), 1u);
  bool found_exec = false;
  for (const finder::GadgetChain& chain : report.chains) {
    if (chain.key().find("Runtime#exec") != std::string::npos) found_exec = true;
  }
  EXPECT_TRUE(found_exec);
  // Ungoverned: the byte-accounting fields stay at their zero defaults.
  EXPECT_EQ(report.frontier_pruned, 0u);
  EXPECT_EQ(report.spilled_paths, 0u);
  EXPECT_TRUE(report.partial_sinks.empty());
}

TEST(MemoryGovernance, TinyBudgetIsPartialNotCrash) {
  finder::FinderReport free_run = search(0);
  finder::FinderReport tight = search(64 * 1024);

  // The cap bit: branches were pruned, the affected sinks say so and why.
  EXPECT_GT(tight.frontier_pruned, 0u);
  ASSERT_FALSE(tight.partial_sinks.empty());
  bool saw_memory_reason = false;
  for (const finder::PartialSink& sink : tight.partial_sinks) {
    if (sink.reason == finder::PartialReason::MemoryPressure) saw_memory_reason = true;
  }
  EXPECT_TRUE(saw_memory_reason);

  // The never-lose-work bit: everything found is real (subset of the free
  // run) and the deepest-branch-keeps-going guarantee still lands the one
  // true chain.
  std::set<std::string> free_keys = chain_keys(free_run);
  for (const std::string& key : chain_keys(tight)) {
    EXPECT_EQ(free_keys.count(key), 1u) << "invented chain " << key;
  }
  bool found_exec = false;
  for (const finder::GadgetChain& chain : tight.chains) {
    if (chain.key().find("Runtime#exec") != std::string::npos) found_exec = true;
  }
  EXPECT_TRUE(found_exec);

  // Governed searches stream results out of the engine as spills.
  EXPECT_EQ(tight.spilled_paths, tight.chains.size());
  EXPECT_GT(tight.frontier_bytes_charged, 0u);
  EXPECT_GT(tight.peak_frontier_bytes, 0u);
  EXPECT_LE(tight.peak_frontier_bytes, 64u * 1024);
}

TEST(MemoryGovernance, ChainsSubsetInvariantAcrossBudgets) {
  std::set<std::string> free_keys = chain_keys(search(0));
  for (std::size_t pool : {16u * 1024, 64u * 1024, 256u * 1024, 4u * 1024 * 1024}) {
    finder::FinderReport governed = search(pool);
    for (const std::string& key : chain_keys(governed)) {
      EXPECT_EQ(free_keys.count(key), 1u) << "pool " << pool << " invented chain " << key;
    }
  }
}

TEST(MemoryGovernance, GovernedSearchIsBitIdenticalAtAnyJobCount) {
  finder::FinderReport serial = search(64 * 1024);
  for (int jobs : {2, 4, 8}) {
    util::ThreadPool pool(jobs);
    finder::FinderReport parallel = search(64 * 1024, &pool);
    ASSERT_EQ(serial.chains.size(), parallel.chains.size()) << jobs << " jobs";
    for (std::size_t i = 0; i < serial.chains.size(); ++i) {
      EXPECT_EQ(serial.chains[i].key(), parallel.chains[i].key()) << jobs << " jobs, chain " << i;
    }
    // The byte ledger itself is deterministic: per-sink shards charge
    // single-threadedly against caps derived from the pool size alone.
    EXPECT_EQ(serial.frontier_pruned, parallel.frontier_pruned) << jobs << " jobs";
    EXPECT_EQ(serial.frontier_bytes_charged, parallel.frontier_bytes_charged) << jobs << " jobs";
    EXPECT_EQ(serial.peak_frontier_bytes, parallel.peak_frontier_bytes) << jobs << " jobs";
    EXPECT_EQ(serial.spilled_paths, parallel.spilled_paths) << jobs << " jobs";
    EXPECT_EQ(serial.partial_sinks.size(), parallel.partial_sinks.size()) << jobs << " jobs";
  }
}

TEST(MemoryGovernance, ProcessLedgerDrainsToZero) {
  util::MemoryBudget root(512u * 1024 * 1024);
  finder::FinderReport report = search(64 * 1024, nullptr, &root);
  EXPECT_GT(report.frontier_bytes_charged, 0u);
  // Every frontier charge was released on pop, prune, spill or exit.
  EXPECT_EQ(root.charged(), 0u);
  EXPECT_GT(root.peak(), 0u);
}

jir::Program small_fixture_program() {
  corpus::FanoutStressSpec spec;
  spec.hops = 8;
  spec.aliases = 64;
  spec.call_fans = 2;
  return jar::link({corpus::jdk_base_archive(), corpus::fanout_stress_archive(spec)});
}

TEST(MemoryGovernance, CpgDeadlineCutSkipsMethodsNotCrash) {
  jir::Program program = small_fixture_program();
  cpg::CpgOptions expired;
  expired.deadline = util::Deadline::after(std::chrono::milliseconds{0});
  cpg::Cpg cut = cpg::build_cpg(program, expired);
  EXPECT_TRUE(cut.deadline_hit);
  EXPECT_GT(cut.methods_skipped, 0u);
  // The ORG (classes) is already built when the payload loop gets cut; the
  // graph stays structurally usable, just under-summarised.
  EXPECT_GT(cut.stats.class_nodes, 0u);
}

TEST(MemoryGovernance, CpgUnsetGovernanceChangesNothing) {
  jir::Program program = small_fixture_program();
  cpg::Cpg baseline = cpg::build_cpg(program, {});
  EXPECT_FALSE(baseline.deadline_hit);
  EXPECT_EQ(baseline.methods_skipped, 0u);

  // A metered build (live budget, unlimited deadline) produces the
  // identical graph and drains its ledger.
  util::MemoryBudget budget(1u << 30);
  cpg::CpgOptions metered;
  metered.memory = &budget;
  cpg::Cpg governed = cpg::build_cpg(program, metered);
  EXPECT_EQ(graph::serialize(baseline.db), graph::serialize(governed.db));
  EXPECT_GT(budget.peak(), 0u);
  EXPECT_EQ(budget.charged(), 0u);
}

TEST(MemoryGovernance, LooseBudgetMatchesUngovernedChains) {
  // A pool comfortably above the fixture's peak must not change the answer.
  finder::FinderReport free_run = search(0);
  finder::FinderReport roomy = search(512u * 1024 * 1024);
  EXPECT_EQ(chain_keys(free_run), chain_keys(roomy));
  EXPECT_EQ(roomy.frontier_pruned, 0u);
  EXPECT_TRUE(roomy.partial_sinks.empty());
}

}  // namespace
}  // namespace tabby
