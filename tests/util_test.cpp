// Unit tests for the util module: strings, Result, Rng determinism, table
// rendering and the bounds-checked byte cursor.
#include <gtest/gtest.h>

#include "util/bytes.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace tabby::util {
namespace {

TEST(Strings, SplitPreservesEmptyFields) {
  auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, SplitSingleToken) {
  auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, JoinRoundTrip) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(join(parts, "."), "x.y.z");
  EXPECT_EQ(join({}, "."), "");
}

TEST(Strings, PrefixSuffixContains) {
  EXPECT_TRUE(starts_with("java.lang.String", "java."));
  EXPECT_FALSE(starts_with("j", "java."));
  EXPECT_TRUE(ends_with("Foo.class", ".class"));
  EXPECT_FALSE(ends_with("s", ".class"));
  EXPECT_TRUE(contains("abcdef", "cde"));
  EXPECT_FALSE(contains("abcdef", "xyz"));
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  x y \t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, SimpleAndPackageNames) {
  EXPECT_EQ(simple_name("java.lang.String"), "String");
  EXPECT_EQ(simple_name("NoPackage"), "NoPackage");
  EXPECT_EQ(package_of("java.lang.String"), "java.lang");
  EXPECT_EQ(package_of("NoPackage"), "");
}

TEST(Strings, FormatDouble) {
  EXPECT_EQ(format_double(1.5, 1), "1.5");
  EXPECT_EQ(format_double(31.6219, 1), "31.6");
  EXPECT_EQ(format_double(0.0, 2), "0.00");
}

TEST(Result, ValueAndError) {
  Result<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  EXPECT_EQ(good.value_or(-1), 42);

  Result<int> bad(Error{"boom", 7});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().message, "boom");
  EXPECT_EQ(bad.error().to_string(), "boom (at 7)");
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(Result, StatusOkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  Status failed = Error{"nope"};
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.error().message, "nope");
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= a.next_u64() != b.next_u64();
  EXPECT_TRUE(any_diff);
}

TEST(Rng, BoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
    auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    double u = rng.next_unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, IdentifierShape) {
  Rng rng(9);
  std::string id = rng.identifier(8);
  EXPECT_EQ(id.size(), 8u);
  for (char c : id) EXPECT_TRUE(c >= 'a' && c <= 'z');
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "count"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  std::string out = t.render();
  EXPECT_NE(out.find("| name  | count |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22222 |"), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NE(t.render().find("| only |"), std::string::npos);
}

TEST(Bytes, ScalarRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.uvarint(300);
  w.svarint(-123456);
  w.bytes("hello");

  ByteReader r(w.data());
  EXPECT_EQ(r.u8().value(), 0xAB);
  EXPECT_EQ(r.u16().value(), 0xBEEF);
  EXPECT_EQ(r.u32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.uvarint().value(), 300u);
  EXPECT_EQ(r.svarint().value(), -123456);
  EXPECT_EQ(r.bytes().value(), "hello");
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, VarintBoundaries) {
  for (std::uint64_t v : std::vector<std::uint64_t>{0, 127, 128, 16383, 16384, UINT64_MAX}) {
    ByteWriter w;
    w.uvarint(v);
    ByteReader r(w.data());
    EXPECT_EQ(r.uvarint().value(), v);
  }
  for (std::int64_t v : std::vector<std::int64_t>{0, -1, 1, INT64_MIN, INT64_MAX}) {
    ByteWriter w;
    w.svarint(v);
    ByteReader r(w.data());
    EXPECT_EQ(r.svarint().value(), v);
  }
}

TEST(Bytes, TruncatedInputFails) {
  ByteWriter w;
  w.u32(12345678);
  auto data = w.data();
  std::span<const std::byte> truncated(data.data(), 2);
  ByteReader r(truncated);
  EXPECT_FALSE(r.u32().ok());
}

TEST(Bytes, OversizedStringLengthRejected) {
  ByteWriter w;
  w.uvarint(1'000'000);  // declared length far beyond actual bytes
  w.u8('x');
  ByteReader r(w.data());
  EXPECT_FALSE(r.bytes().ok());
}

TEST(Bytes, OversizedCountRejectedBeforeAllocation) {
  ByteWriter w;
  w.uvarint(UINT64_MAX / 2);
  ByteReader r(w.data());
  EXPECT_FALSE(r.count("thing").ok());
}

TEST(ParseInt, AcceptsPlainBase10) {
  EXPECT_EQ(parse_int("0").value(), 0);
  EXPECT_EQ(parse_int("42").value(), 42);
  EXPECT_EQ(parse_int("-7").value(), -7);
  EXPECT_EQ(parse_int("2147483647").value(), 2147483647);
}

TEST(ParseInt, RejectsPartialParses) {
  // The whole token must be digits: trailing garbage is an error, not a
  // silent truncation to the leading digits.
  EXPECT_FALSE(parse_int("12abc").ok());
  EXPECT_FALSE(parse_int("1.5").ok());
  EXPECT_FALSE(parse_int("1 ").ok());
  EXPECT_FALSE(parse_int(" 1").ok());
}

TEST(ParseInt, RejectsNonNumbersAndExoticForms) {
  EXPECT_FALSE(parse_int("").ok());
  EXPECT_FALSE(parse_int("abc").ok());
  EXPECT_FALSE(parse_int("+5").ok());
  EXPECT_FALSE(parse_int("0x1f").ok());
  EXPECT_FALSE(parse_int("--3").ok());
}

TEST(ParseInt, RejectsOutOfRange) {
  auto r = parse_int("99999999999999999999");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("out of range"), std::string::npos);
}

TEST(ParseInt, ErrorNamesTheOffendingToken) {
  auto r = parse_int("12abc");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("12abc"), std::string::npos);
}

}  // namespace
}  // namespace tabby::util
