// A deliberately tiny JSON reader for test assertions (trace-file
// well-formedness, event field checks). Strict enough to reject malformed
// documents; not a production parser — tests only.
#pragma once

#include <cctype>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace tabby::testsupport {

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object } kind = Kind::Null;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_array() const { return kind == Kind::Array; }
  bool is_object() const { return kind == Kind::Object; }
  bool has(const std::string& key) const { return object.count(key) > 0; }
  const JsonValue& at(const std::string& key) const { return object.at(key); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  /// Parses the whole document; nullopt on any syntax error or trailing junk.
  std::optional<JsonValue> parse() {
    std::optional<JsonValue> value = parse_value();
    if (!value) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }
  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool literal(const char* word) {
    std::size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  std::optional<std::string> parse_string() {
    if (!eat('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return std::nullopt;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return std::nullopt;
            for (int i = 0; i < 4; ++i) {
              if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) return std::nullopt;
            }
            out += '?';  // placeholder: tests never assert on escaped content
            pos_ += 4;
            break;
          }
          default: return std::nullopt;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return std::nullopt;  // raw control characters are invalid JSON
      } else {
        out += c;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<JsonValue> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    char c = text_[pos_];
    JsonValue value;
    if (c == '{') {
      ++pos_;
      value.kind = JsonValue::Kind::Object;
      skip_ws();
      if (eat('}')) return value;
      while (true) {
        skip_ws();
        auto key = parse_string();
        if (!key || !eat(':')) return std::nullopt;
        auto member = parse_value();
        if (!member) return std::nullopt;
        value.object.emplace(*key, std::move(*member));
        if (eat(',')) continue;
        if (eat('}')) return value;
        return std::nullopt;
      }
    }
    if (c == '[') {
      ++pos_;
      value.kind = JsonValue::Kind::Array;
      skip_ws();
      if (eat(']')) return value;
      while (true) {
        auto element = parse_value();
        if (!element) return std::nullopt;
        value.array.push_back(std::move(*element));
        if (eat(',')) continue;
        if (eat(']')) return value;
        return std::nullopt;
      }
    }
    if (c == '"') {
      auto s = parse_string();
      if (!s) return std::nullopt;
      value.kind = JsonValue::Kind::String;
      value.string = std::move(*s);
      return value;
    }
    if (literal("true")) {
      value.kind = JsonValue::Kind::Bool;
      value.boolean = true;
      return value;
    }
    if (literal("false")) {
      value.kind = JsonValue::Kind::Bool;
      return value;
    }
    if (literal("null")) return value;
    // number
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return std::nullopt;
    try {
      value.number = std::stod(text_.substr(start, pos_ - start));
    } catch (...) {
      return std::nullopt;
    }
    value.kind = JsonValue::Kind::Number;
    return value;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

inline std::optional<JsonValue> parse_json(const std::string& text) {
  return JsonParser(text).parse();
}

}  // namespace tabby::testsupport
