// Shared randomized-graph generator for tests. Seeded and fully
// deterministic: the same seed always yields the same graph, so a failing
// differential case reproduces from its printed seed alone. Produces graphs
// with tombstones (removed nodes/edges), the part of the id space most worth
// fuzzing — the frozen snapshot renumbers across them and the query planner
// must never resurrect them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace tabby::testsupport {

/// Randomized graph with tombstones: 24-71 nodes over four labels, ~3 edges
/// per node over four types, a mix of every property encoding, then ~1/8 of
/// edges and ~1/10 of nodes removed (with their incident edges).
inline graph::GraphDb random_graph(std::uint64_t seed) {
  util::Rng rng(seed);
  graph::GraphDb db;
  const char* labels[] = {"Method", "Class", "Field", "Call"};
  const char* types[] = {"CALL", "ALIAS", "EXTENDS", "CONTAINS"};
  const char* keys[] = {"EXTRA", "ORDER", "IS_SINK", "SCORE", "POS", "TAGS", "MIX"};
  std::size_t n = 24 + rng.next_below(48);
  std::vector<graph::NodeId> ids;
  for (std::size_t i = 0; i < n; ++i) {
    auto id = db.add_node(labels[rng.next_below(4)]);
    ids.push_back(id);
    // Every node gets a unique string NAME, like real CPG nodes: query
    // output then renders identically across representations (anonymous
    // nodes print raw ids, which the freeze legitimately renumbers).
    db.set_node_prop(id, "NAME", graph::Value{"n" + std::to_string(i)});
    for (std::size_t k = 0; k < 2 + rng.next_below(3); ++k) {
      const char* key = keys[rng.next_below(7)];
      switch (rng.next_below(7)) {
        case 0: db.set_node_prop(id, key, graph::Value{rng.next_below(2) == 0}); break;
        case 1: db.set_node_prop(id, key, graph::Value{std::int64_t(rng.next_below(1000))}); break;
        case 2: db.set_node_prop(id, key, graph::Value{double(rng.next_below(100)) / 4.0}); break;
        case 3:
          db.set_node_prop(id, key, graph::Value{"s" + std::to_string(rng.next_below(50))});
          break;
        case 4:
          db.set_node_prop(
              id, key,
              graph::Value{std::vector<std::int64_t>{std::int64_t(rng.next_below(5)), -1}});
          break;
        case 5:
          db.set_node_prop(id, key,
                           graph::Value{std::vector<std::string>{
                               "t" + std::to_string(rng.next_below(9))}});
          break;
        default: db.set_node_prop(id, key, graph::Value{}); break;
      }
    }
  }
  std::size_t m = n * 3;
  for (std::size_t i = 0; i < m; ++i) {
    auto e = db.add_edge(ids[rng.next_below(ids.size())], ids[rng.next_below(ids.size())],
                         types[rng.next_below(4)]);
    if (rng.next_below(3) == 0)
      db.set_edge_prop(e, "POLLUTED_POSITION",
                       graph::Value{std::vector<std::int64_t>{std::int64_t(rng.next_below(4))}});
    if (rng.next_below(4) == 0)
      db.set_edge_prop(e, "W", graph::Value{std::int64_t(rng.next_below(10))});
  }
  // Tombstones: ~1/8 of edges and ~1/10 of nodes (with their incident edges).
  for (std::size_t i = 0; i < db.edge_capacity(); ++i)
    if (db.edge_alive(i) && rng.next_below(8) == 0) db.remove_edge(i);
  for (std::size_t i = 0; i < db.node_capacity(); ++i)
    if (db.node_alive(i) && rng.next_below(10) == 0) db.remove_node(i);
  return db;
}

}  // namespace tabby::testsupport
