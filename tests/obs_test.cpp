// Tests for the observability subsystem (src/obs): the free disabled path,
// span recording and nesting, counter merging across threads, the Chrome
// trace-event exporter, and the counters' agreement with cpg::CpgStats.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "corpus/components.hpp"
#include "cpg/builder.hpp"
#include "obs/obs.hpp"
#include "support/json_lite.hpp"
#include "util/thread_pool.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter: every operator new in this binary bumps it, so a
// test can assert a code region performed zero heap allocations.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
// ---------------------------------------------------------------------------

namespace tabby::obs {
namespace {

/// Enables the tracer for one test body and guarantees disable on exit, so a
/// failing test cannot leak an enabled tracer into its neighbours.
struct ScopedTracing {
  ScopedTracing() { Tracer::instance().enable(); }
  ~ScopedTracing() { Tracer::instance().disable(); }
};

TEST(ObsDisabled, SpanAndCounterAreAllocationFree) {
  Tracer& tracer = Tracer::instance();
  ASSERT_FALSE(tracer.enabled());
  // Warm up: the first instance() call and thread registration may touch the
  // heap once; the steady state must not.
  {
    TABBY_SPAN("warmup");
    counter_add("warmup");
  }
  std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    Span span("obs_test.disabled");
    span.attr("key", std::uint64_t{42});
    counter_add("obs_test.disabled_counter", 7);
  }
  std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
}

TEST(ObsDisabled, NothingIsRecorded) {
  {
    TABBY_SPAN("obs_test.ghost");
    counter_add("obs_test.ghost");
  }
  ScopedTracing tracing;
  TraceReport report = Tracer::instance().flush();
  EXPECT_TRUE(report.spans.empty());
  EXPECT_EQ(report.counter("obs_test.ghost"), 0u);
}

TEST(ObsSpans, NestedSpansAreEnclosedAndSorted) {
  ScopedTracing tracing;
  {
    Span outer("obs_test.outer");
    outer.attr("what", std::string("outer"));
    {
      TABBY_SPAN("obs_test.inner_a");
    }
    {
      TABBY_SPAN("obs_test.inner_b");
    }
  }
  TraceReport report = Tracer::instance().flush();
  ASSERT_EQ(report.spans.size(), 3u);
  // flush() sorts by start time with parents before children; the outer span
  // started first and ended last.
  const SpanRecord& outer = report.spans[0];
  EXPECT_EQ(outer.name, "obs_test.outer");
  ASSERT_EQ(outer.attrs.size(), 1u);
  EXPECT_EQ(outer.attrs[0].key, "what");
  EXPECT_EQ(outer.attrs[0].value, "outer");
  std::uint64_t outer_end = outer.start_ns + outer.dur_ns;
  for (std::size_t i = 1; i < report.spans.size(); ++i) {
    const SpanRecord& inner = report.spans[i];
    EXPECT_GE(inner.start_ns, outer.start_ns) << inner.name;
    EXPECT_LE(inner.start_ns + inner.dur_ns, outer_end) << inner.name;
    EXPECT_GE(inner.start_ns, report.spans[i - 1].start_ns);  // ascending
  }
  EXPECT_EQ(report.spans[1].name, "obs_test.inner_a");
  EXPECT_EQ(report.spans[2].name, "obs_test.inner_b");
}

TEST(ObsSpans, EnableStartsAFreshEpoch) {
  ScopedTracing tracing;
  { TABBY_SPAN("obs_test.first_epoch"); }
  Tracer::instance().enable();  // re-enable clears undrained data
  { TABBY_SPAN("obs_test.second_epoch"); }
  TraceReport report = Tracer::instance().flush();
  ASSERT_EQ(report.spans.size(), 1u);
  EXPECT_EQ(report.spans[0].name, "obs_test.second_epoch");
}

TEST(ObsCounters, MergedAcrossThreads) {
  ScopedTracing tracing;
  util::ThreadPool pool(4);
  pool.parallel_for(64, [](std::size_t) { counter_add("obs_test.parallel", 2); });
  TraceReport report = Tracer::instance().flush();
  EXPECT_EQ(report.counter("obs_test.parallel"), 128u);
  EXPECT_EQ(report.counter("obs_test.absent"), 0u);
}

TEST(ObsCounters, WorkerThreadsGetNamedTracks) {
  ScopedTracing tracing;
  util::ThreadPool pool(3);
  pool.parallel_for(256, [](std::size_t) { TABBY_SPAN("obs_test.task"); });
  TraceReport report = Tracer::instance().flush();
  ASSERT_FALSE(report.thread_names.empty());
  EXPECT_EQ(report.thread_names[0], "main");
  // Worker threads register asynchronously at startup; at least one must
  // have run tasks for a 256-iteration parallel_for on a 3-thread pool.
  int workers = 0;
  for (const std::string& name : report.thread_names) {
    if (name.rfind("worker-", 0) == 0) ++workers;
  }
  EXPECT_GE(workers, 1);
  EXPECT_LE(workers, 3);
  for (const SpanRecord& span : report.spans) {
    ASSERT_LT(span.tid, report.thread_names.size());
  }
}

TEST(ObsExport, ChromeJsonIsWellFormed) {
  ScopedTracing tracing;
  {
    Span span("obs_test.export");
    span.attr("answer", std::uint64_t{42});
    span.attr("quoted", std::string("a \"b\"\nc\\d"));
  }
  counter_add("obs_test.export_counter", 5);
  TraceReport report = Tracer::instance().flush();
  auto doc = testsupport::parse_json(report.to_chrome_json());
  ASSERT_TRUE(doc.has_value()) << report.to_chrome_json();
  ASSERT_TRUE(doc->is_array());

  bool saw_meta = false, saw_span = false, saw_counter = false;
  for (const auto& event : doc->array) {
    ASSERT_TRUE(event.is_object());
    ASSERT_TRUE(event.has("ph"));
    const std::string& ph = event.at("ph").string;
    if (ph == "M") {
      saw_meta = event.at("name").string == "thread_name";
    } else if (ph == "X") {
      EXPECT_TRUE(event.has("ts"));
      EXPECT_TRUE(event.has("dur"));
      EXPECT_TRUE(event.has("tid"));
      if (event.at("name").string == "obs_test.export") {
        saw_span = true;
        ASSERT_TRUE(event.has("args"));
        EXPECT_EQ(event.at("args").at("answer").string, "42");
      }
    } else if (ph == "C") {
      if (event.at("name").string == "obs_test.export_counter") {
        saw_counter = true;
        EXPECT_EQ(event.at("args").at("value").number, 5);
      }
    }
  }
  EXPECT_TRUE(saw_meta);
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_counter);
}

TEST(ObsExport, MetricsSummaryListsSpansAndCounters) {
  ScopedTracing tracing;
  { TABBY_SPAN("obs_test.summary"); }
  counter_add("obs_test.summary_counter", 3);
  TraceReport report = Tracer::instance().flush();
  std::string summary = report.metrics_summary();
  EXPECT_NE(summary.find("metrics: span "), std::string::npos) << summary;
  EXPECT_NE(summary.find("obs_test.summary"), std::string::npos) << summary;
  EXPECT_NE(summary.find("metrics: counter obs_test.summary_counter = 3"), std::string::npos)
      << summary;
}

TEST(ObsPipeline, CpgCountersMatchCpgStats) {
  corpus::Component component = corpus::build_component("BeanShell1");
  jir::Program program = component.link();
  ScopedTracing tracing;
  // A pool engages the SCC-wave precompute path, so the wave counters fire.
  util::ThreadPool pool(2);
  cpg::CpgOptions options;
  options.executor = &pool;
  cpg::Cpg cpg = cpg::build_cpg(program, options);
  TraceReport report = Tracer::instance().flush();

  EXPECT_EQ(report.counter("cpg.class_nodes"), cpg.stats.class_nodes);
  EXPECT_EQ(report.counter("cpg.method_nodes"), cpg.stats.method_nodes);
  EXPECT_EQ(report.counter("cpg.call_edges"), cpg.stats.call_edges);
  EXPECT_EQ(report.counter("cpg.alias_edges"), cpg.stats.alias_edges);
  EXPECT_EQ(report.counter("cpg.call_sites_pruned"), cpg.stats.pruned_call_sites);
  EXPECT_GT(report.counter("analysis.methods_analyzed"), 0u);
  EXPECT_GT(report.counter("analysis.scc_waves"), 0u);

  // The build phases all recorded spans nested under cpg.build.
  EXPECT_GT(report.total_seconds("cpg.build"), 0.0);
  for (const char* phase : {"cpg.org", "cpg.pcg", "cpg.mag", "cpg.index"}) {
    bool found = false;
    for (const SpanRecord& span : report.spans) found |= span.name == phase;
    EXPECT_TRUE(found) << phase;
  }
}

TEST(ObsPipeline, TracingDoesNotChangeTheCpg) {
  corpus::Component component = corpus::build_component("BeanShell1");
  jir::Program program = component.link();
  cpg::Cpg plain = cpg::build_cpg(program);
  cpg::Cpg traced = [&] {
    ScopedTracing tracing;
    return cpg::build_cpg(program);
  }();
  EXPECT_EQ(plain.stats.class_nodes, traced.stats.class_nodes);
  EXPECT_EQ(plain.stats.method_nodes, traced.stats.method_nodes);
  EXPECT_EQ(plain.stats.relationship_edges, traced.stats.relationship_edges);
  EXPECT_EQ(plain.stats.call_edges, traced.stats.call_edges);
  EXPECT_EQ(plain.stats.pruned_call_sites, traced.stats.pruned_call_sites);
}

}  // namespace
}  // namespace tabby::obs
