// Tests for the embedded property-graph store and traversal framework: CRUD,
// adjacency, indexes, tombstones, persistence round trips and the
// Expander/Evaluator engine with all uniqueness modes.
#include <gtest/gtest.h>

#include <filesystem>

#include "graph/graph.hpp"
#include "graph/serialize.hpp"
#include "graph/traversal.hpp"
#include "util/rng.hpp"

namespace tabby::graph {
namespace {

TEST(Graph, AddAndReadBack) {
  GraphDb db;
  NodeId a = db.add_node("Class", {{"NAME", Value{std::string("demo.A")}}});
  NodeId b = db.add_node("Method", {{"NAME", Value{std::string("run")}}});
  EdgeId e = db.add_edge(a, b, "HAS", {{"W", Value{std::int64_t{7}}}});

  EXPECT_EQ(db.node_count(), 2u);
  EXPECT_EQ(db.edge_count(), 1u);
  EXPECT_EQ(db.node(a).prop_string("NAME"), "demo.A");
  EXPECT_EQ(db.edge(e).from, a);
  EXPECT_EQ(db.edge(e).to, b);
  ASSERT_EQ(db.out_edges(a).size(), 1u);
  EXPECT_EQ(db.in_edges(b).size(), 1u);
  EXPECT_TRUE(db.out_edges(b).empty());
}

TEST(Graph, EdgeToMissingNodeThrows) {
  GraphDb db;
  NodeId a = db.add_node("X");
  EXPECT_THROW(db.add_edge(a, 999, "E"), std::out_of_range);
  EXPECT_THROW((void)db.node(42), std::out_of_range);
}

TEST(Graph, RemoveEdgeUnlinksAdjacency) {
  GraphDb db;
  NodeId a = db.add_node("X");
  NodeId b = db.add_node("X");
  EdgeId e = db.add_edge(a, b, "E");
  db.remove_edge(e);
  EXPECT_EQ(db.edge_count(), 0u);
  EXPECT_TRUE(db.out_edges(a).empty());
  EXPECT_TRUE(db.in_edges(b).empty());
  EXPECT_FALSE(db.edge_alive(e));
  db.remove_edge(e);  // idempotent
}

TEST(Graph, RemoveNodeRemovesIncidentEdges) {
  GraphDb db;
  NodeId a = db.add_node("X");
  NodeId b = db.add_node("X");
  NodeId c = db.add_node("X");
  db.add_edge(a, b, "E");
  db.add_edge(b, c, "E");
  db.add_edge(c, a, "E");
  db.remove_node(b);
  EXPECT_EQ(db.node_count(), 2u);
  EXPECT_EQ(db.edge_count(), 1u);
  EXPECT_TRUE(db.nodes_with_label("X").size() == 3u ||
              db.find_nodes("X", "none", Value{}).empty());  // label bucket pruned of b
  EXPECT_FALSE(db.node_alive(b));
}

TEST(Graph, TypedEdgeFilters) {
  GraphDb db;
  NodeId a = db.add_node("X");
  NodeId b = db.add_node("X");
  db.add_edge(a, b, "CALL");
  db.add_edge(a, b, "ALIAS");
  db.add_edge(a, b, "CALL");
  EXPECT_EQ(db.out_edges_typed(a, "CALL").size(), 2u);
  EXPECT_EQ(db.out_edges_typed(a, "ALIAS").size(), 1u);
  EXPECT_EQ(db.in_edges_typed(b, "CALL").size(), 2u);
  EXPECT_TRUE(db.find_edge(a, b, "ALIAS").has_value());
  EXPECT_FALSE(db.find_edge(b, a, "ALIAS").has_value());
}

TEST(Graph, IndexLookupMatchesScan) {
  GraphDb db;
  for (int i = 0; i < 100; ++i) {
    db.add_node("Method", {{"NAME", Value{std::string("m") + std::to_string(i % 10)}}});
  }
  // Scan before index.
  auto scanned = db.find_nodes("Method", "NAME", Value{std::string("m3")});
  db.create_index("Method", "NAME");
  auto indexed = db.find_nodes("Method", "NAME", Value{std::string("m3")});
  EXPECT_EQ(scanned, indexed);
  EXPECT_EQ(indexed.size(), 10u);
  EXPECT_TRUE(db.has_index("Method", "NAME"));
}

TEST(Graph, IndexStaysInSyncWithPropertyUpdates) {
  GraphDb db;
  db.create_index("Method", "NAME");
  NodeId n = db.add_node("Method", {{"NAME", Value{std::string("before")}}});
  EXPECT_EQ(db.find_nodes("Method", "NAME", Value{std::string("before")}).size(), 1u);
  db.set_node_prop(n, "NAME", Value{std::string("after")});
  EXPECT_TRUE(db.find_nodes("Method", "NAME", Value{std::string("before")}).empty());
  EXPECT_EQ(db.find_nodes("Method", "NAME", Value{std::string("after")}).size(), 1u);
}

TEST(Graph, IndexIgnoresRemovedNodes) {
  GraphDb db;
  db.create_index("X", "K");
  NodeId n = db.add_node("X", {{"K", Value{std::int64_t{5}}}});
  db.remove_node(n);
  EXPECT_TRUE(db.find_nodes("X", "K", Value{std::int64_t{5}}).empty());
}

TEST(Graph, BoolAndIntIndexKeysCompatible) {
  GraphDb db;
  db.create_index("X", "FLAG");
  db.add_node("X", {{"FLAG", Value{true}}});
  EXPECT_EQ(db.find_nodes("X", "FLAG", Value{true}).size(), 1u);
  EXPECT_TRUE(db.find_nodes("X", "FLAG", Value{false}).empty());
}

TEST(Graph, StatsCountByLabelAndType) {
  GraphDb db;
  NodeId a = db.add_node("Class");
  NodeId b = db.add_node("Method");
  NodeId c = db.add_node("Method");
  db.add_edge(a, b, "HAS");
  db.add_edge(a, c, "HAS");
  db.add_edge(b, c, "CALL");
  GraphStats s = db.stats();
  EXPECT_EQ(s.nodes_by_label["Class"], 1u);
  EXPECT_EQ(s.nodes_by_label["Method"], 2u);
  EXPECT_EQ(s.edges_by_type["HAS"], 2u);
  EXPECT_EQ(s.edges_by_type["CALL"], 1u);
}

TEST(Value, ToStringForms) {
  EXPECT_EQ(to_string(Value{}), "null");
  EXPECT_EQ(to_string(Value{true}), "true");
  EXPECT_EQ(to_string(Value{std::int64_t{-5}}), "-5");
  EXPECT_EQ(to_string(Value{std::string("x")}), "\"x\"");
  EXPECT_EQ(to_string(Value{std::vector<std::int64_t>{1, 2}}), "[1,2]");
  EXPECT_EQ(to_string(Value{std::vector<std::string>{"a"}}), "[\"a\"]");
}

TEST(Serialize, RoundTripPreservesGraph) {
  GraphDb db;
  NodeId a = db.add_node("Class", {{"NAME", Value{std::string("A")}},
                                   {"FLAG", Value{true}},
                                   {"PP", Value{std::vector<std::int64_t>{0, 1, 1000000000}}}});
  NodeId b = db.add_node("Method", {{"D", Value{2.5}}});
  db.add_edge(a, b, "HAS", {{"LIST", Value{std::vector<std::string>{"x", "y"}}}});

  auto bytes = serialize(db);
  auto loaded = deserialize(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.error().to_string();
  const GraphDb& g2 = loaded.value();
  EXPECT_EQ(g2.node_count(), 2u);
  EXPECT_EQ(g2.edge_count(), 1u);
  auto hits = g2.find_nodes("Class", "NAME", Value{std::string("A")});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_TRUE(g2.node(hits[0]).prop_bool("FLAG"));
}

TEST(Serialize, TombstonesAreCompactedAway) {
  GraphDb db;
  NodeId a = db.add_node("X");
  NodeId b = db.add_node("X");
  NodeId c = db.add_node("X");
  db.add_edge(a, b, "E");
  db.add_edge(b, c, "E");
  db.remove_node(b);
  auto loaded = deserialize(serialize(db));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().node_count(), 2u);
  EXPECT_EQ(loaded.value().edge_count(), 0u);
}

TEST(Serialize, CorruptInputRejected) {
  GraphDb db;
  db.add_node("X");
  auto bytes = serialize(db);
  bytes[0] = std::byte{0};
  EXPECT_FALSE(deserialize(bytes).ok());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::span<const std::byte> prefix(bytes.data(), len);
    EXPECT_FALSE(deserialize(prefix).ok());
  }
}

TEST(Serialize, FileRoundTrip) {
  GraphDb db;
  db.add_node("X", {{"K", Value{std::int64_t{1}}}});
  auto path = std::filesystem::temp_directory_path() / "tabby_graph_test.tgdb";
  ASSERT_TRUE(save(db, path).ok());
  auto loaded = load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().node_count(), 1u);
  std::filesystem::remove(path);
}

// --- Traversal --------------------------------------------------------------

/// Builds a small DAG: 0 -> 1 -> 3, 0 -> 2 -> 3, 3 -> 4.
GraphDb diamond() {
  GraphDb db;
  for (int i = 0; i < 5; ++i) db.add_node("N");
  db.add_edge(0, 1, "E");
  db.add_edge(0, 2, "E");
  db.add_edge(1, 3, "E");
  db.add_edge(2, 3, "E");
  db.add_edge(3, 4, "E");
  return db;
}

Traverser<int>::ExpandFn forward_expand() {
  return [](const GraphDb& db, const Path& path, const int& state) {
    std::vector<Step<int>> steps;
    for (EdgeId e : db.out_edges(path.end())) {
      steps.push_back(Step<int>{e, db.edge(e).to, state + 1});
    }
    return steps;
  };
}

TEST(Traversal, FindsAllPathsToTarget) {
  GraphDb db = diamond();
  auto evaluate = [](const GraphDb&, const Path& path, const int&) {
    if (path.end() == 4) return Evaluation::IncludeAndPrune;
    return Evaluation::ExcludeAndContinue;
  };
  Traverser<int> t(db, forward_expand(), evaluate);
  auto results = t.run(0, 0);
  ASSERT_EQ(results.size(), 2u);  // two paths through the diamond
  for (const auto& r : results) {
    EXPECT_EQ(r.path.length(), 3u);
    EXPECT_EQ(r.state, 3);  // state threaded through expansions
  }
}

TEST(Traversal, NodeGlobalUniquenessLosesOnePath) {
  GraphDb db = diamond();
  auto evaluate = [](const GraphDb&, const Path& path, const int&) {
    if (path.end() == 4) return Evaluation::IncludeAndPrune;
    return Evaluation::ExcludeAndContinue;
  };
  Traverser<int> t(db, forward_expand(), evaluate, Uniqueness::NodeGlobal);
  // The GadgetInspector behaviour: node 3 is visited once, so only one of
  // the two diamond paths survives.
  EXPECT_EQ(t.run(0, 0).size(), 1u);
}

TEST(Traversal, NodePathUniquenessBreaksCycles) {
  GraphDb db;
  db.add_node("N");
  db.add_node("N");
  db.add_edge(0, 1, "E");
  db.add_edge(1, 0, "E");  // cycle
  auto evaluate = [](const GraphDb&, const Path&, const int&) {
    return Evaluation::ExcludeAndContinue;
  };
  Traverser<int> t(db, forward_expand(), evaluate, Uniqueness::NodePath);
  auto results = t.run(0, 0);  // must terminate
  EXPECT_TRUE(results.empty());
}

TEST(Traversal, MaxResultsStopsEarly) {
  GraphDb db = diamond();
  auto evaluate = [](const GraphDb&, const Path& path, const int&) {
    if (path.end() == 4) return Evaluation::IncludeAndPrune;
    return Evaluation::ExcludeAndContinue;
  };
  TraversalLimits limits;
  limits.max_results = 1;
  Traverser<int> t(db, forward_expand(), evaluate, Uniqueness::NodePath, limits);
  EXPECT_EQ(t.run(0, 0).size(), 1u);
}

TEST(Traversal, ExpansionBudgetReportsExhaustion) {
  GraphDb db = diamond();
  auto evaluate = [](const GraphDb&, const Path&, const int&) {
    return Evaluation::ExcludeAndContinue;
  };
  TraversalLimits limits;
  limits.max_expansions = 2;
  Traverser<int> t(db, forward_expand(), evaluate, Uniqueness::None, limits);
  t.run(0, 0);
  EXPECT_TRUE(t.exhausted_budget());
  EXPECT_GE(t.expansions(), 2u);
}

TEST(Traversal, EvaluatorCanIncludeAndContinue) {
  GraphDb db = diamond();
  auto evaluate = [](const GraphDb&, const Path&, const int&) {
    return Evaluation::IncludeAndContinue;  // every prefix path included
  };
  Traverser<int> t(db, forward_expand(), evaluate);
  auto results = t.run(0, 0);
  // Paths: [0], [0,1], [0,2], [0,1,3], [0,2,3], [0,1,3,4], [0,2,3,4]
  EXPECT_EQ(results.size(), 7u);
}

TEST(Traversal, StressRandomGraphTerminates) {
  GraphDb db;
  util::Rng rng(42);
  constexpr int kNodes = 200;
  for (int i = 0; i < kNodes; ++i) db.add_node("N");
  for (int i = 0; i < 800; ++i) {
    db.add_edge(rng.next_below(kNodes), rng.next_below(kNodes), "E");
  }
  auto evaluate = [](const GraphDb&, const Path& path, const int&) {
    if (path.length() >= 4) return Evaluation::ExcludeAndPrune;
    return Evaluation::ExcludeAndContinue;
  };
  TraversalLimits limits;
  limits.max_expansions = 100000;
  Traverser<int> t(db, forward_expand(), evaluate, Uniqueness::NodePath, limits);
  t.run(0, 0);
  SUCCEED();  // termination is the assertion
}

}  // namespace
}  // namespace tabby::graph
