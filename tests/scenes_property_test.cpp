// Property sweep over the five Table X scenes: multi-jar linking sanity,
// CPG invariants at scene scale, chain soundness, and Cypher queryability of
// the scene CPGs (the RQ4 workflow at realistic size).
#include <gtest/gtest.h>

#include "corpus/scenes.hpp"
#include "cpg/builder.hpp"
#include "cpg/schema.hpp"
#include "cypher/cypher.hpp"
#include "finder/finder.hpp"
#include "jir/validate.hpp"

namespace tabby::corpus {
namespace {

class SceneProperty : public ::testing::TestWithParam<std::string> {
 public:
  static std::string sanitize(const std::string& name) {
    std::string out = name;
    for (char& c : out) {
      if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
    }
    return out;
  }
};

TEST_P(SceneProperty, LinksWithoutDuplicatesAndValidates) {
  Scene scene = build_scene(GetParam());
  std::size_t skipped = 0;
  jir::Program program = jar::link(scene.jars, &skipped);
  EXPECT_EQ(skipped, 0u);  // scene jars use disjoint packages
  auto issues = jir::validate(program);
  EXPECT_TRUE(issues.empty()) << (issues.empty() ? "" : issues.front().to_string());
  EXPECT_GT(program.class_count(), 100u);  // scenes have real bulk
}

TEST_P(SceneProperty, EveryTruthHasAMatchingReportedChain) {
  Scene scene = build_scene(GetParam());
  cpg::Cpg cpg = cpg::build_cpg(scene.link());
  finder::GadgetChainFinder finder(cpg.db);
  auto chains = finder.find_all().chains;
  for (const GroundTruthChain& truth : scene.truths) {
    bool found = false;
    for (const auto& chain : chains) {
      if (chain.source_signature() == truth.source_signature &&
          chain.sink_signature() == truth.sink_signature) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << GetParam() << ": " << truth.id;
  }
  // result = truths + guarded fakes, nothing else.
  EXPECT_EQ(chains.size(), scene.truths.size() + scene.fakes.size());
}

TEST_P(SceneProperty, SceneCpgAnswersCypherQueries) {
  Scene scene = build_scene(GetParam());
  cpg::Cpg cpg = cpg::build_cpg(scene.link());

  auto sinks = cypher::run_query(
      cpg.db, "MATCH (m:Method {IS_SINK: true}) RETURN m.SIGNATURE, m.SINK_TYPE");
  ASSERT_TRUE(sinks.ok());
  EXPECT_GE(sinks.value().rows.size(), 3u);

  auto sources = cypher::run_query(
      cpg.db,
      "MATCH (c:Class {IS_SERIALIZABLE: true})-[:HAS]->(m:Method {IS_SOURCE: true}) "
      "RETURN m.SIGNATURE");
  ASSERT_TRUE(sources.ok());
  EXPECT_GE(sources.value().rows.size(), scene.truths.size());

  // Chains findable via pure Cypher too (bounded hop count).
  auto paths = cypher::run_query(
      cpg.db,
      "MATCH p = (m:Method {IS_SOURCE: true})-[:CALL*1..3]->(s:Method {IS_SINK: true}) "
      "RETURN p LIMIT 5");
  ASSERT_TRUE(paths.ok());
}

TEST_P(SceneProperty, DeterministicRebuild) {
  Scene a = build_scene(GetParam());
  Scene b = build_scene(GetParam());
  ASSERT_EQ(a.jars.size(), b.jars.size());
  for (std::size_t i = 0; i < a.jars.size(); ++i) {
    EXPECT_EQ(jar::write_archive(a.jars[i]), jar::write_archive(b.jars[i])) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllScenes, SceneProperty, ::testing::ValuesIn(scene_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return SceneProperty::sanitize(info.param);
                         });

}  // namespace
}  // namespace tabby::corpus
