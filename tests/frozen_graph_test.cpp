// Tests for the frozen CSR snapshot (src/graph/frozen.hpp, docs/GRAPH.md):
// accessor-level equivalence with the mutable GraphDb it freezes, byte-level
// determinism of the frame, the fail-closed validation contract (truncation,
// bit flips, version skew are structured errors, never UB), memory-budget
// charging, the cache's .tfzn publish/load/audit integration, and the
// end-to-end guarantee that `--frozen` and `--no-frozen` runs are
// byte-identical.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cache/cache.hpp"
#include "cli/cli.hpp"
#include "corpus/components.hpp"
#include "cpg/builder.hpp"
#include "cypher/cypher.hpp"
#include "finder/finder.hpp"
#include "graph/frozen.hpp"
#include "graph/graph.hpp"
#include "graph/serialize.hpp"
#include "jar/archive.hpp"
#include "pipeline/pipeline.hpp"
#include "support/random_graph.hpp"
#include "util/digest.hpp"
#include "util/memory_budget.hpp"
#include "util/rng.hpp"

namespace tabby {
namespace {

namespace fs = std::filesystem;

graph::FrozenGraph freeze_or_die(const graph::GraphDb& db, std::uint64_t key = 0,
                                 util::MemoryBudget* memory = nullptr) {
  auto result = graph::FrozenGraph::freeze(db, key, memory);
  EXPECT_TRUE(result.ok()) << (result.ok() ? "" : result.error().message);
  return std::move(result.value());
}

/// A small graph exercising every property encoding the column format has:
/// typed bool/int/real/string/int-list columns, a heterogeneous (Mixed)
/// column, string lists, explicit nulls, and absent entries.
graph::GraphDb kitchen_sink_graph() {
  graph::GraphDb db;
  auto a = db.add_node("Method");
  auto b = db.add_node("Method");
  auto c = db.add_node("Class");
  auto d = db.add_node("Field");
  db.set_node_prop(a, "NAME", graph::Value{std::string("readObject")});
  db.set_node_prop(b, "NAME", graph::Value{std::string("exec")});
  db.set_node_prop(a, "IS_SOURCE", graph::Value{true});
  db.set_node_prop(b, "IS_SINK", graph::Value{true});
  db.set_node_prop(c, "ACCESS", graph::Value{std::int64_t{33}});
  db.set_node_prop(c, "SCORE", graph::Value{2.5});
  db.set_node_prop(d, "TAGS", graph::Value{std::vector<std::string>{"a", "bb"}});
  // Heterogeneous key: int on one node, string on another -> Mixed column.
  db.set_node_prop(a, "MIXED", graph::Value{std::int64_t{7}});
  db.set_node_prop(b, "MIXED", graph::Value{std::string("seven")});
  db.set_node_prop(c, "MIXED", graph::Value{false});
  db.set_node_prop(d, "NOTHING", graph::Value{});  // explicit null
  auto e0 = db.add_edge(a, b, "CALL");
  auto e1 = db.add_edge(b, c, "CALL");
  db.add_edge(c, d, "CONTAINS");
  db.add_edge(a, c, "ALIAS");
  db.set_edge_prop(e0, "POLLUTED_POSITION", graph::Value{std::vector<std::int64_t>{0, -1}});
  db.set_edge_prop(e1, "POLLUTED_POSITION", graph::Value{std::vector<std::int64_t>{2}});
  db.set_edge_prop(e1, "ORDER", graph::Value{std::int64_t{1}});
  return db;
}

/// Randomized graph with tombstones (shared generator in tests/support/):
/// removals force the freeze to renumber node/edge ids densely, the part of
/// the mapping most worth fuzzing.
using testsupport::random_graph;

/// Asserts every accessor of `fg` agrees with `db`, modulo the documented
/// dense renumbering (live elements in ascending id order).
void expect_equivalent(const graph::GraphDb& db, const graph::FrozenGraph& fg) {
  ASSERT_EQ(fg.node_count(), db.node_count());
  ASSERT_EQ(fg.edge_count(), db.edge_count());

  // Dense id <-> store id mapping, in the documented order.
  std::vector<graph::NodeId> live_nodes;
  std::vector<graph::EdgeId> live_edges;
  for (graph::NodeId id = 0; id < db.node_capacity(); ++id)
    if (db.node_alive(id)) live_nodes.push_back(id);
  for (graph::EdgeId id = 0; id < db.edge_capacity(); ++id)
    if (db.edge_alive(id)) live_edges.push_back(id);
  std::vector<std::uint32_t> dense_node(db.node_capacity(), 0);
  std::vector<std::uint32_t> dense_edge(db.edge_capacity(), 0);
  for (std::size_t i = 0; i < live_nodes.size(); ++i)
    dense_node[live_nodes[i]] = static_cast<std::uint32_t>(i);
  for (std::size_t i = 0; i < live_edges.size(); ++i)
    dense_edge[live_edges[i]] = static_cast<std::uint32_t>(i);

  for (std::size_t i = 0; i < live_edges.size(); ++i) {
    const auto& edge = db.edge(live_edges[i]);
    EXPECT_EQ(fg.edge_from(i), dense_node[edge.from]);
    EXPECT_EQ(fg.edge_to(i), dense_node[edge.to]);
    EXPECT_EQ(fg.edge_type_name(fg.edge_type(i)), edge.type);
  }

  for (std::size_t i = 0; i < live_nodes.size(); ++i) {
    const auto& node = db.node(live_nodes[i]);
    EXPECT_EQ(fg.label(i), node.label);

    // Untyped iteration must replay GraphDb's insertion order exactly.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> got;
    fg.for_each_out_ordered(i, [&](std::uint32_t e, std::uint32_t nbr) {
      got.emplace_back(e, nbr);
    });
    std::vector<std::pair<std::uint32_t, std::uint32_t>> want;
    for (graph::EdgeId e : db.out_edges(live_nodes[i]))
      want.emplace_back(dense_edge[e], dense_node[db.edge(e).to]);
    EXPECT_EQ(got, want) << "out adjacency of node " << live_nodes[i];

    got.clear();
    fg.for_each_in_ordered(i, [&](std::uint32_t e, std::uint32_t nbr) {
      got.emplace_back(e, nbr);
    });
    want.clear();
    for (graph::EdgeId e : db.in_edges(live_nodes[i]))
      want.emplace_back(dense_edge[e], dense_node[db.edge(e).from]);
    EXPECT_EQ(got, want) << "in adjacency of node " << live_nodes[i];

    // Typed slices preserve the filtered insertion order.
    for (std::uint16_t t = 0; t < fg.edge_type_count(); ++t) {
      std::string type(fg.edge_type_name(t));
      auto view = fg.out_edges_typed_view(i, t);
      auto typed = db.out_edges_typed(live_nodes[i], type);
      ASSERT_EQ(view.size(), typed.size());
      for (std::size_t j = 0; j < typed.size(); ++j) {
        EXPECT_EQ(view.edge[j], dense_edge[typed[j]]);
        EXPECT_EQ(view.nbr[j], dense_node[db.edge(typed[j]).to]);
      }
    }

    // Every property round-trips through the columnar encoding.
    for (const auto& [key, value] : node.props) {
      auto got_value = fg.node_prop(i, key);
      ASSERT_TRUE(got_value.has_value()) << key;
      EXPECT_TRUE(*got_value == value) << key;
      EXPECT_EQ(fg.node_prop_string(i, key), node.prop_string(key));
      EXPECT_EQ(fg.node_prop_bool(i, key), node.prop_bool(key));
      EXPECT_EQ(fg.node_prop_int(i, key, -7), node.prop_int(key, -7));
    }
    EXPECT_FALSE(fg.node_prop(i, "NO_SUCH_KEY").has_value());
  }

  for (std::size_t i = 0; i < live_edges.size(); ++i) {
    for (const auto& [key, value] : db.edge(live_edges[i]).props) {
      auto got_value = fg.edge_prop(i, key);
      ASSERT_TRUE(got_value.has_value()) << key;
      EXPECT_TRUE(*got_value == value) << key;
    }
  }

  // Label scans agree (ascending dense ids on both sides).
  for (std::uint16_t l = 0; l < fg.label_count(); ++l) {
    std::string label(fg.label_name(l));
    auto scan = fg.nodes_with_label(label);
    auto store_scan = db.nodes_with_label(label);
    ASSERT_EQ(scan.size(), store_scan.size()) << label;
    for (std::size_t j = 0; j < scan.size(); ++j)
      EXPECT_EQ(scan[j], dense_node[store_scan[j]]);
  }
  EXPECT_TRUE(fg.nodes_with_label("NoSuchLabel").empty());
}

TEST(FrozenGraph, KitchenSinkRoundTrip) {
  graph::GraphDb db = kitchen_sink_graph();
  graph::FrozenGraph fg = freeze_or_die(db);
  expect_equivalent(db, fg);

  // find_nodes matches GraphDb semantics, including on the Mixed column.
  auto sinks = fg.find_nodes("Method", "IS_SINK", graph::Value{true});
  ASSERT_EQ(sinks.size(), 1u);
  EXPECT_EQ(fg.node_prop_string(sinks[0], "NAME"), "exec");
  EXPECT_EQ(fg.find_nodes("Method", "MIXED", graph::Value{std::string("seven")}).size(), 1u);
  EXPECT_EQ(fg.find_nodes("Class", "MIXED", graph::Value{false}).size(), 1u);
  EXPECT_TRUE(fg.find_nodes("Method", "IS_SINK", graph::Value{false}).empty());
}

TEST(FrozenGraph, FreezeIsDeterministicAndStoreStable) {
  graph::GraphDb db = random_graph(11);
  graph::FrozenGraph once = freeze_or_die(db, 99);
  graph::FrozenGraph twice = freeze_or_die(db, 99);
  ASSERT_EQ(once.frame().size(), twice.frame().size());
  EXPECT_EQ(std::memcmp(once.frame().data(), twice.frame().data(), once.frame().size()), 0);

  // Freezing a store round trip yields the same bytes: the store emission
  // order IS the dense renumbering order.
  auto bytes = graph::serialize(db);
  auto restored = graph::deserialize(bytes);
  ASSERT_TRUE(restored.ok()) << restored.error().message;
  graph::FrozenGraph thawed = freeze_or_die(restored.value(), 99);
  ASSERT_EQ(once.frame().size(), thawed.frame().size());
  EXPECT_EQ(std::memcmp(once.frame().data(), thawed.frame().data(), once.frame().size()), 0);
}

TEST(FrozenGraph, SaveMapFileAndFromBytesRoundTrip) {
  graph::GraphDb db = kitchen_sink_graph();
  graph::FrozenGraph fg = freeze_or_die(db, 0xDEADBEEF);
  EXPECT_EQ(fg.content_key(), 0xDEADBEEFu);
  EXPECT_FALSE(fg.mapped());

  fs::path path = fs::temp_directory_path() / ("tabby_frozen_" + std::to_string(::getpid()));
  ASSERT_TRUE(fg.save(path).ok());
  ASSERT_EQ(fs::file_size(path), fg.frame().size());

  auto mapped = graph::FrozenGraph::map_file(path);
  ASSERT_TRUE(mapped.ok()) << mapped.error().message;
  EXPECT_TRUE(mapped.value().mapped());
  EXPECT_EQ(mapped.value().content_key(), 0xDEADBEEFu);
  expect_equivalent(db, mapped.value());

  auto copied = graph::FrozenGraph::from_bytes(fg.frame());
  ASSERT_TRUE(copied.ok()) << copied.error().message;
  EXPECT_FALSE(copied.value().mapped());
  expect_equivalent(db, copied.value());
  fs::remove(path);
}

TEST(FrozenGraph, EquivalenceFuzz) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    graph::GraphDb db = random_graph(seed);
    graph::FrozenGraph fg = freeze_or_die(db);
    expect_equivalent(db, fg);
  }
}

TEST(FrozenGraph, TruncationIsACleanError) {
  graph::GraphDb db = kitchen_sink_graph();
  graph::FrozenGraph fg = freeze_or_die(db);
  std::vector<std::byte> frame(fg.frame().begin(), fg.frame().end());
  for (std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{47},
                          frame.size() / 2, frame.size() - 1}) {
    auto result =
        graph::FrozenGraph::from_bytes(std::span<const std::byte>(frame.data(), len));
    ASSERT_FALSE(result.ok()) << "truncated to " << len << " bytes";
    EXPECT_FALSE(result.error().message.empty());
  }
}

TEST(FrozenGraph, EveryBitFlipIsDetected) {
  graph::GraphDb db = kitchen_sink_graph();
  graph::FrozenGraph fg = freeze_or_die(db, 77);
  std::vector<std::byte> pristine(fg.frame().begin(), fg.frame().end());
  // Sample offsets across the whole frame (header, directory, sections,
  // trailing checksum included); the trailing FNV must catch each flip.
  std::size_t step = std::max<std::size_t>(1, pristine.size() / 64);
  for (std::size_t off = 0; off < pristine.size(); off += step) {
    std::vector<std::byte> frame = pristine;
    frame[off] ^= std::byte{0x40};
    auto result = graph::FrozenGraph::from_bytes(frame);
    EXPECT_FALSE(result.ok()) << "flip at offset " << off << " went undetected";
  }
  std::vector<std::byte> last = pristine;
  last.back() ^= std::byte{0x01};
  EXPECT_FALSE(graph::FrozenGraph::from_bytes(last).ok());
}

TEST(FrozenGraph, VersionSkewAndBadMagicAreStructuredErrors) {
  graph::GraphDb db = kitchen_sink_graph();
  graph::FrozenGraph fg = freeze_or_die(db);
  std::vector<std::byte> frame(fg.frame().begin(), fg.frame().end());

  // Bump the version and re-sign so the checksum cannot mask the skew.
  auto resign = [](std::vector<std::byte>& f) {
    std::uint64_t sum = util::fnv1a(
        std::span<const std::byte>(f.data(), f.size() - graph::kFrozenChecksumSize));
    std::memcpy(f.data() + f.size() - graph::kFrozenChecksumSize, &sum, sizeof sum);
  };
  std::vector<std::byte> stale = frame;
  std::uint16_t future = graph::kFrozenVersion + 1;
  std::memcpy(stale.data() + 4, &future, sizeof future);
  resign(stale);
  auto skewed = graph::FrozenGraph::from_bytes(stale);
  ASSERT_FALSE(skewed.ok());
  EXPECT_NE(skewed.error().message.find("version"), std::string::npos)
      << skewed.error().message;

  std::vector<std::byte> wrong = frame;
  std::uint32_t magic = 0x12345678;
  std::memcpy(wrong.data(), &magic, sizeof magic);
  resign(wrong);
  EXPECT_FALSE(graph::FrozenGraph::from_bytes(wrong).ok());
}

TEST(FrozenGraph, MemoryBudgetChargesFrameForLifetime) {
  util::MemoryBudget budget;
  graph::GraphDb db = kitchen_sink_graph();
  {
    graph::FrozenGraph fg = freeze_or_die(db, 0, &budget);
    EXPECT_GE(budget.charged(), fg.frame().size());
  }
  EXPECT_EQ(budget.charged(), 0u);  // eviction == destruction == release
}

TEST(FrozenGraph, FinderAndCypherMatchStoreBackedRuns) {
  corpus::Component component = corpus::build_component("BeanShell1");
  cpg::Cpg cpg = cpg::build_cpg(component.link());
  graph::FrozenGraph fg = freeze_or_die(cpg.db);

  finder::FinderOptions fopts;
  auto store_report = finder::GadgetChainFinder(cpg.db, fopts).find_all();
  auto frozen_report = finder::GadgetChainFinder(fg, fopts).find_all();
  ASSERT_FALSE(store_report.chains.empty());
  ASSERT_EQ(frozen_report.chains.size(), store_report.chains.size());
  for (std::size_t i = 0; i < store_report.chains.size(); ++i)
    EXPECT_EQ(frozen_report.chains[i].to_string(), store_report.chains[i].to_string());

  for (const char* query : {"MATCH (m:Method {IS_SINK: true}) RETURN m.SIGNATURE",
                            "MATCH (m:Method {IS_SOURCE: true}) RETURN m.SIGNATURE LIMIT 3",
                            "MATCH (a:Method)-[:CALL]->(b:Method) RETURN b.SIGNATURE LIMIT 5"}) {
    auto store_rows = cypher::run_query(cpg.db, query);
    auto frozen_rows = cypher::run_query(fg, query);
    ASSERT_TRUE(store_rows.ok()) << query;
    ASSERT_TRUE(frozen_rows.ok()) << query;
    EXPECT_EQ(frozen_rows.value().to_string(fg), store_rows.value().to_string(cpg.db)) << query;
  }
}

// --- Cache + pipeline + CLI integration -------------------------------------

struct CliRun {
  int code = 0;
  std::string out;
  std::string err;
};

CliRun run(std::vector<std::string> args) {
  std::ostringstream out, err;
  CliRun result;
  result.code = cli::run_cli(args, out, err);
  result.out = out.str();
  result.err = err.str();
  return result;
}

void flip_byte(const fs::path& path, std::size_t offset) {
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(file.good()) << path;
  file.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  file.get(byte);
  file.seekp(static_cast<std::streamoff>(offset));
  file.put(static_cast<char>(byte ^ 0x5a));
}

class FrozenCacheFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / ("tabby_frozen_cache_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
    jar_ = (dir_ / "one.tjar").string();
    ASSERT_TRUE(jar::write_archive_file(corpus::build_component("BeanShell1").jar, jar_).ok());
    cache_dir_ = (dir_ / "cache").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::vector<fs::path> frozen_frames() {
    std::vector<fs::path> out;
    for (const auto& entry : fs::directory_iterator(fs::path(cache_dir_) / "snapshots"))
      if (entry.path().extension() == ".tfzn") out.push_back(entry.path());
    return out;
  }

  fs::path dir_;
  std::string jar_, cache_dir_;
};

TEST_F(FrozenCacheFixture, StoreAndLoadFrozenRoundTrip) {
  auto cache = cache::AnalysisCache::open(cache_dir_);
  ASSERT_TRUE(cache.ok()) << cache.error().message;

  graph::GraphDb db = kitchen_sink_graph();
  std::uint64_t key = 0xABCD;
  graph::FrozenGraph fg = freeze_or_die(db, key);
  ASSERT_TRUE(cache.value().store_frozen(key, fg).ok());

  std::string reason = "sentinel";
  auto loaded = cache.value().load_frozen(key, &reason);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(reason.empty());
  EXPECT_EQ(loaded->content_key(), key);
  expect_equivalent(db, *loaded);

  // Content-key mismatch on publish is an error, not a silent bad entry.
  EXPECT_FALSE(cache.value().store_frozen(key + 1, fg).ok());

  // A miss on an absent key leaves the corrupt reason empty.
  reason = "sentinel";
  EXPECT_FALSE(cache.value().load_frozen(key + 2, &reason).has_value());
  EXPECT_TRUE(reason.empty());

  // A bit-flipped frame is a miss WITH a structural reason.
  auto frames = frozen_frames();
  ASSERT_EQ(frames.size(), 1u);
  flip_byte(frames[0], fs::file_size(frames[0]) / 2);
  reason.clear();
  EXPECT_FALSE(cache.value().load_frozen(key, &reason).has_value());
  EXPECT_FALSE(reason.empty());
}

TEST_F(FrozenCacheFixture, AuditSeesFrozenFramesAndPrunesOrphans) {
  // Warm the cache through the pipeline so the .tfzn sits next to its .tsnp.
  CliRun cold = run({"find", jar_, "--cache", cache_dir_});
  ASSERT_EQ(cold.code, 0) << cold.err;
  ASSERT_EQ(frozen_frames().size(), 1u);

  auto report = cache::audit_cache(cache_dir_, /*prune=*/false);
  ASSERT_TRUE(report.ok()) << report.error().message;
  EXPECT_TRUE(report.value().clean());
  EXPECT_EQ(report.value().frozen_checked, 1u);
  bool saw_frozen = false;
  for (const auto& entry : report.value().entries)
    saw_frozen |= entry.kind == cache::CacheAuditEntry::Kind::FrozenSnapshot;
  EXPECT_TRUE(saw_frozen);

  // Deleting the companion snapshot orphans the frame; prune reclaims it.
  for (const auto& entry : fs::directory_iterator(fs::path(cache_dir_) / "snapshots"))
    if (entry.path().extension() == ".tsnp") fs::remove(entry.path());
  auto orphaned = cache::audit_cache(cache_dir_, /*prune=*/true);
  ASSERT_TRUE(orphaned.ok()) << orphaned.error().message;
  EXPECT_EQ(orphaned.value().orphaned, 1u);
  EXPECT_GT(orphaned.value().reclaimed_bytes, 0u);
  EXPECT_TRUE(frozen_frames().empty());
}

TEST_F(FrozenCacheFixture, WarmFrozenStartSkipsTheStoreDecode) {
  pipeline::Options options;
  options.cache_dir = cache_dir_;
  options.use_frozen = true;
  auto cold = pipeline::run({jar_}, options);
  ASSERT_TRUE(cold.ok()) << cold.error().message;
  EXPECT_FALSE(cold.value().warm);
  ASSERT_TRUE(cold.value().frozen.has_value());
  EXPECT_FALSE(cold.value().db_skipped);

  auto warm = pipeline::run({jar_}, options);
  ASSERT_TRUE(warm.ok()) << warm.error().message;
  EXPECT_TRUE(warm.value().warm);
  ASSERT_TRUE(warm.value().frozen.has_value());
  EXPECT_TRUE(warm.value().db_skipped);
  EXPECT_TRUE(warm.value().frozen->mapped());
  EXPECT_EQ(warm.value().db.node_count(), 0u);
  // The graph bytes still carry the verified store blob either way.
  EXPECT_EQ(warm.value().graph_bytes, cold.value().graph_bytes);
  EXPECT_EQ(warm.value().frozen->node_count(), cold.value().frozen->node_count());

  // Corrupt the cached frame: the next warm run degrades to the store
  // decode with a warning — and self-heals by republishing a fresh frame.
  auto frames = frozen_frames();
  ASSERT_EQ(frames.size(), 1u);
  std::vector<char> before(fs::file_size(frames[0]));
  std::ifstream(frames[0], std::ios::binary).read(before.data(), before.size());
  flip_byte(frames[0], fs::file_size(frames[0]) - 3);
  auto healed = pipeline::run({jar_}, options);
  ASSERT_TRUE(healed.ok()) << healed.error().message;
  EXPECT_TRUE(healed.value().warm);
  EXPECT_FALSE(healed.value().db_skipped);
  ASSERT_TRUE(healed.value().frozen.has_value());
  bool warned = false;
  for (const auto& warning : healed.value().warnings)
    warned |= warning.find("frozen") != std::string::npos;
  EXPECT_TRUE(warned);
  std::vector<char> after(fs::file_size(frames[0]));
  std::ifstream(frames[0], std::ios::binary).read(after.data(), after.size());
  EXPECT_EQ(before, after);  // byte-identical republish
}

TEST_F(FrozenCacheFixture, CliFindIsByteIdenticalFrozenVsStore) {
  CliRun frozen = run({"find", jar_, "--frozen"});
  CliRun store = run({"find", jar_, "--no-frozen"});
  ASSERT_EQ(frozen.code, store.code);
  EXPECT_EQ(frozen.out, store.out);
  ASSERT_FALSE(frozen.out.empty());

  CliRun jobs = run({"find", jar_, "--frozen", "--jobs", "4"});
  EXPECT_EQ(jobs.out, store.out);

  CliRun query_frozen =
      run({"query", jar_, "MATCH (m:Method {IS_SINK: true}) RETURN m.SIGNATURE", "--frozen"});
  CliRun query_store =
      run({"query", jar_, "MATCH (m:Method {IS_SINK: true}) RETURN m.SIGNATURE", "--no-frozen"});
  ASSERT_EQ(query_frozen.code, 0) << query_frozen.err;
  EXPECT_EQ(query_frozen.out, query_store.out);
}

}  // namespace
}  // namespace tabby
