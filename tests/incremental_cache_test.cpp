// Differential correctness harness for the incremental analysis cache
// (src/cache). For every Table IX component model and every Table X dev
// scene, the same classpath is analyzed three ways —
//
//   cold                  fresh cache directory, everything recomputed
//   warm                  same cache, nothing changed: snapshot hit
//   warm-after-mutation   one archive mutated: snapshot miss, unchanged
//                         archives warm-start from fragments
//
// — asserting byte-identical `--store` exports and identical `find` chain
// lists across all three paths, across `--jobs` counts, and against the
// cache-less pipeline. This is the proof obligation that makes the cache a
// pure accelerator: it may never change a single output byte.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "cli/cli.hpp"
#include "corpus/components.hpp"
#include "corpus/scenes.hpp"
#include "jar/archive.hpp"

namespace tabby {
namespace {

namespace fs = std::filesystem;

struct CliRun {
  int code = 0;
  std::string out;
  std::string err;
};

CliRun run(std::vector<std::string> args) {
  std::ostringstream out, err;
  CliRun result;
  result.code = cli::run_cli(args, out, err);
  result.out = out.str();
  result.err = err.str();
  return result;
}

/// Drops the lines that legitimately differ between cold and warm runs: the
/// cache stats line and wall-clock timings. Everything else must match.
std::string filter_volatile(const std::string& text) {
  std::istringstream in(text);
  std::string line, out;
  while (std::getline(in, line)) {
    if (line.rfind("cache:", 0) == 0) continue;
    if (line.rfind("build:", 0) == 0) continue;
    if (line.rfind("graph store written to", 0) == 0) continue;  // file names differ
    if (line.find(" s search") != std::string::npos) continue;
    out += line;
    out += '\n';
  }
  return out;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// One classpath under test: the generated .tjar files plus whether the
/// built-in JDK model should be prefixed by the CLI (component archives) or
/// is already part of the generated set (scene archives).
struct Target {
  std::vector<std::string> jars;
  bool with_jdk = true;
};

class IncrementalCache : public ::testing::TestWithParam<std::string> {
 public:
  static std::string sanitize(const std::string& name) {
    std::string out = name;
    for (char& c : out) {
      if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
    }
    return out;
  }

 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("tabby_inc_cache_" + std::to_string(::getpid()) + "_" + sanitize(GetParam()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& file) const { return (dir_ / file).string(); }

  /// Generates the target named by GetParam() ("component:X" / "scene:X").
  Target generate() {
    std::string kind = GetParam().substr(0, GetParam().find(':'));
    std::string name = GetParam().substr(GetParam().find(':') + 1);
    fs::path jar_dir = dir_ / "jars";
    CliRun gen = run({"gen", name, "--out", jar_dir.string()});
    EXPECT_EQ(gen.code, 0) << gen.err;
    Target target;
    for (const auto& entry : fs::directory_iterator(jar_dir)) {
      if (entry.path().extension() == ".tjar") target.jars.push_back(entry.path().string());
    }
    std::sort(target.jars.begin(), target.jars.end());
    if (kind == "component") {
      // gen also wrote jdk-base.tjar; the CLI prefixes the JDK itself.
      std::erase_if(target.jars, [](const std::string& p) {
        return p.find("jdk-base") != std::string::npos;
      });
      target.with_jdk = true;
    } else {
      // Scene classpaths already include the jdk base archive.
      target.with_jdk = false;
    }
    return target;
  }

  std::vector<std::string> with_flags(std::string cmd, const Target& target,
                                      std::vector<std::string> extra) {
    std::vector<std::string> args{std::move(cmd)};
    args.insert(args.end(), target.jars.begin(), target.jars.end());
    if (!target.with_jdk) args.push_back("--no-jdk");
    args.insert(args.end(), extra.begin(), extra.end());
    return args;
  }

  /// Mutates the last archive of the classpath: drops its last class (a real
  /// semantic change) or, for single-class archives, edits the version
  /// metadata (a pure content change).
  void mutate_last_archive(const Target& target, bool* dropped_class) {
    auto archive = jar::read_archive_file(target.jars.back());
    ASSERT_TRUE(archive.ok()) << archive.error().to_string();
    if (archive.value().classes.size() > 1) {
      archive.value().classes.pop_back();
      *dropped_class = true;
    } else {
      archive.value().meta.version += "-mutated";
      *dropped_class = false;
    }
    auto written = jar::write_archive_file(archive.value(), target.jars.back());
    ASSERT_TRUE(written.ok()) << written.error().to_string();
  }

  fs::path dir_;
};

TEST_P(IncrementalCache, ColdWarmAndMutationAreDifferentiallyIdentical) {
  Target target = generate();
  ASSERT_FALSE(target.jars.empty());

  // --- cold: fresh cache, snapshot miss, all fragments miss ---------------
  CliRun cold = run(with_flags("analyze", target,
                               {"--cache", path("cache"), "--store", path("cold.tgdb"),
                                "--jobs", "1"}));
  ASSERT_EQ(cold.code, 0) << cold.err;
  EXPECT_NE(cold.out.find("snapshot miss"), std::string::npos) << cold.out;
  EXPECT_NE(cold.out.find("fragments 0/" + std::to_string(target.jars.size()) + " hit"),
            std::string::npos)
      << cold.out;

  // Reference runs without any cache, at two job counts.
  CliRun plain = run(with_flags("analyze", target, {"--store", path("plain.tgdb")}));
  ASSERT_EQ(plain.code, 0) << plain.err;
  EXPECT_EQ(read_file(path("cold.tgdb")), read_file(path("plain.tgdb")))
      << "cached cold export differs from the cache-less pipeline";

  // --- warm: same cache, nothing changed, different job count -------------
  CliRun warm = run(with_flags("analyze", target,
                               {"--cache", path("cache"), "--store", path("warm.tgdb"),
                                "--jobs", "3"}));
  ASSERT_EQ(warm.code, 0) << warm.err;
  EXPECT_NE(warm.out.find("snapshot hit"), std::string::npos) << warm.out;
  EXPECT_EQ(read_file(path("cold.tgdb")), read_file(path("warm.tgdb")))
      << "warm export is not byte-identical to the cold export";
  EXPECT_EQ(filter_volatile(cold.out), filter_volatile(warm.out));

  // find: cache-less vs warm cache, across job counts — identical chains.
  CliRun find_plain = run(with_flags("find", target, {"--jobs", "1"}));
  ASSERT_EQ(find_plain.code, 0) << find_plain.err;
  for (const char* jobs : {"1", "4"}) {
    CliRun find_warm = run(with_flags("find", target, {"--cache", path("cache"), "--jobs", jobs}));
    ASSERT_EQ(find_warm.code, 0) << find_warm.err;
    EXPECT_NE(find_warm.out.find("snapshot hit"), std::string::npos);
    EXPECT_EQ(filter_volatile(find_plain.out), filter_volatile(find_warm.out))
        << "warm chain list differs at --jobs " << jobs;
  }

  // --- warm after mutating a single archive -------------------------------
  bool dropped_class = false;
  mutate_last_archive(target, &dropped_class);

  CliRun mutated = run(with_flags("analyze", target,
                                  {"--cache", path("cache"), "--store", path("mut_warm.tgdb"),
                                   "--jobs", "2"}));
  ASSERT_EQ(mutated.code, 0) << mutated.err;
  EXPECT_NE(mutated.out.find("snapshot miss"), std::string::npos)
      << "stale snapshot served for a mutated classpath:\n"
      << mutated.out;
  if (target.jars.size() > 1) {
    // Only the mutated archive re-decodes; its unchanged neighbours
    // warm-start from fragments.
    EXPECT_NE(mutated.out.find("fragments " + std::to_string(target.jars.size() - 1) + "/" +
                               std::to_string(target.jars.size()) + " hit"),
              std::string::npos)
        << mutated.out;
  }
  if (dropped_class) {
    EXPECT_NE(read_file(path("mut_warm.tgdb")), read_file(path("cold.tgdb")))
        << "dropping a class did not change the exported CPG";
  }

  // The mutated warm run must match a fresh cold run on the mutated inputs.
  CliRun mutated_cold = run(with_flags("analyze", target,
                                       {"--cache", path("cache2"), "--store",
                                        path("mut_cold.tgdb"), "--jobs", "1"}));
  ASSERT_EQ(mutated_cold.code, 0) << mutated_cold.err;
  EXPECT_EQ(read_file(path("mut_warm.tgdb")), read_file(path("mut_cold.tgdb")));
  EXPECT_EQ(filter_volatile(mutated.out), filter_volatile(mutated_cold.out));

  CliRun find_mut_plain = run(with_flags("find", target, {}));
  CliRun find_mut_warm = run(with_flags("find", target, {"--cache", path("cache")}));
  ASSERT_EQ(find_mut_plain.code, 0) << find_mut_plain.err;
  ASSERT_EQ(find_mut_warm.code, 0) << find_mut_warm.err;
  EXPECT_EQ(filter_volatile(find_mut_plain.out), filter_volatile(find_mut_warm.out));
}

std::vector<std::string> all_targets() {
  std::vector<std::string> targets;
  for (const std::string& name : corpus::component_names()) targets.push_back("component:" + name);
  for (const std::string& name : corpus::scene_names()) targets.push_back("scene:" + name);
  return targets;
}

INSTANTIATE_TEST_SUITE_P(Corpus, IncrementalCache, ::testing::ValuesIn(all_targets()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return IncrementalCache::sanitize(info.param);
                         });

}  // namespace
}  // namespace tabby
