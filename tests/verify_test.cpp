// The supervised runtime re-validation post-pass (src/finder/verify): the
// structured EFFECTIVE / REFUTED / UNCONFIRMED(reason) taxonomy, and — at
// every layer from finder::verify_chains up through the CLI and the serve
// daemon — the three contracts the stage exists for:
//
//   1. verdicts are byte-identical at any executor size and any
//      `--verify-workers` count, including under absorbed worker crashes;
//   2. a VM fault, hang or crash on one chain demotes that chain to
//      UNCONFIRMED (kept, never dropped; exit 3, --strict: 1) and never
//      kills the coordinator;
//   3. every chain gets exactly one verdict, with a machine-readable reason,
//      and only deterministic verdicts ever reach the verdict cache.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/cli.hpp"
#include "corpus/components.hpp"
#include "corpus/jdk.hpp"
#include "cpg/builder.hpp"
#include "finder/finder.hpp"
#include "finder/verify.hpp"
#include "graph/frozen.hpp"
#include "jar/archive.hpp"
#include "serve/json.hpp"
#include "serve/serve.hpp"
#include "util/deadline.hpp"
#include "util/failpoint.hpp"
#include "util/thread_pool.hpp"

namespace tabby {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

/// Every test leaves the process-global failpoint harness disarmed so
/// ordering never matters (the chaos tests arm it programmatically).
class VerifyFixture : public ::testing::Test {
 protected:
  void SetUp() override { util::failpoint::disarm(); }
  void TearDown() override {
    util::failpoint::deactivate_all();
    util::failpoint::disarm();
  }

  /// Unit-test friendly supervision timings (as in dist_test).
  static dist::DistOptions fast(int workers) {
    dist::DistOptions options;
    options.workers = workers;
    options.heartbeat_interval = 20ms;
    options.hang_timeout = 250ms;
    return options;
  }
};

/// One shared linked program + CPG + statically-found chains for the whole
/// suite (BeanShell1 against the jdk base — the shape the CLI builds). The
/// component carries one effective chain and two VM-refutable ones.
struct VerifyWorld {
  jir::Program program;
  cpg::Cpg cpg;
  std::vector<finder::GadgetChain> chains;
};

const VerifyWorld& world() {
  static VerifyWorld w = [] {
    jir::Program program =
        jar::link({corpus::jdk_base_archive(), corpus::build_component("BeanShell1").jar});
    cpg::Cpg cpg = cpg::build_cpg(program, {});
    std::vector<finder::GadgetChain> chains =
        finder::GadgetChainFinder(cpg.db, {}).find_all().chains;
    return VerifyWorld{std::move(program), std::move(cpg), std::move(chains)};
  }();
  return w;
}

/// The full deterministic rendering of a report: taxonomy line, detail and
/// step count per chain — what "byte-identical" means below.
std::string verdict_text(const finder::VerifyReport& report) {
  std::string text;
  for (const finder::ChainVerdict& v : report.verdicts) {
    text += finder::verdict_line(v);
    text += " | ";
    text += v.detail;
    text += " | ";
    text += std::to_string(v.steps);
    text += "\n";
  }
  return text;
}

finder::VerifyReport run_verify(const finder::VerifyOptions& options) {
  finder::AliasView aliases(world().cpg.db);
  return finder::verify_chains(world().program, aliases, world().chains, options);
}

// --- finder::verify_chains -------------------------------------------------

TEST_F(VerifyFixture, EveryChainGetsExactlyOneClassifiedVerdict) {
  finder::VerifyReport report = run_verify({});
  ASSERT_GE(world().chains.size(), 2u);
  ASSERT_EQ(report.verdicts.size(), world().chains.size());
  EXPECT_EQ(report.effective + report.refuted + report.unconfirmed, world().chains.size());
  EXPECT_GE(report.effective, 1u);  // the planted BeanShell1 chain fires
  EXPECT_GE(report.refuted, 1u);    // the guarded/uncontrollable ones die
  EXPECT_EQ(report.unconfirmed, 0u);
  EXPECT_FALSE(report.degraded());
  EXPECT_GT(report.steps_total, 0u);
  for (const finder::ChainVerdict& v : report.verdicts) {
    if (v.verdict == finder::Verdict::Effective) {
      EXPECT_EQ(finder::verdict_line(v), "EFFECTIVE");
      EXPECT_EQ(v.reason, finder::UnconfirmedReason::None);
      EXPECT_GT(v.steps, 0u);
    }
    EXPECT_FALSE(v.from_cache);
  }
}

TEST_F(VerifyFixture, NoChainsMeansAnEmptyCleanReport) {
  finder::AliasView aliases(world().cpg.db);
  finder::VerifyReport report =
      finder::verify_chains(world().program, aliases, {}, finder::VerifyOptions{});
  EXPECT_TRUE(report.verdicts.empty());
  EXPECT_FALSE(report.degraded());
}

TEST_F(VerifyFixture, VerdictsAreByteIdenticalAtAnyExecutorAndWorkerCount) {
  finder::VerifyReport serial = run_verify({});
  std::string baseline = verdict_text(serial);

  util::ThreadPool pool(4);
  finder::VerifyOptions pooled;
  pooled.executor = &pool;
  EXPECT_EQ(verdict_text(run_verify(pooled)), baseline) << "in-process pool";

  for (int workers : {1, 2, 4}) {
    finder::VerifyOptions options;
    options.dist = fast(workers);
    finder::VerifyReport dist = run_verify(options);
    EXPECT_EQ(verdict_text(dist), baseline) << "verify-workers=" << workers;
    EXPECT_GT(dist.dist_stats.workers_spawned, 0u);
    EXPECT_EQ(dist.dist_stats.crashes, 0u);
  }
}

TEST_F(VerifyFixture, FrozenAndStoreAliasViewsProduceTheSameVerdicts) {
  // Satellite 1: a chain found over the frozen CSR verifies against that
  // same snapshot — no re-pinning to the mutable store, no id remapping.
  finder::VerifyReport store = run_verify({});
  auto frozen = graph::FrozenGraph::freeze(world().cpg.db);
  ASSERT_TRUE(frozen.ok()) << frozen.error().to_string();
  finder::AliasView aliases(frozen.value());
  finder::VerifyReport snap =
      finder::verify_chains(world().program, aliases, world().chains, finder::VerifyOptions{});
  EXPECT_EQ(verdict_text(snap), verdict_text(store));
}

TEST_F(VerifyFixture, StepBudgetExhaustionDemotesToUnconfirmedBudget) {
  finder::VerifyOptions options;
  options.max_steps_per_chain = 1;  // any chain that actually runs exceeds it
  finder::VerifyReport report = run_verify(options);
  EXPECT_EQ(report.effective, 0u);
  ASSERT_GE(report.unconfirmed, 1u);
  EXPECT_TRUE(report.degraded());
  for (std::size_t i = 0; i < report.verdicts.size(); ++i) {
    const finder::ChainVerdict& v = report.verdicts[i];
    if (v.verdict != finder::Verdict::Unconfirmed) continue;
    EXPECT_EQ(v.reason, finder::UnconfirmedReason::Budget);
    EXPECT_EQ(finder::verdict_line(v), "UNCONFIRMED(budget)");
    EXPECT_NE(v.detail.find("step budget exceeded"), std::string::npos) << v.detail;
    EXPECT_NE(finder::degraded_line(world().chains[i], v).find("degraded: [verify-budget] "),
              std::string::npos);
  }
}

TEST_F(VerifyFixture, ExpiredDeadlineDemotesEveryChainWithoutExecuting) {
  finder::VerifyOptions options;
  options.deadline = util::Deadline::after(0ms);
  finder::VerifyReport report = run_verify(options);
  EXPECT_EQ(report.unconfirmed, world().chains.size());
  EXPECT_EQ(report.steps_total, 0u);
  for (const finder::ChainVerdict& v : report.verdicts) {
    EXPECT_EQ(finder::verdict_line(v), "UNCONFIRMED(timeout)");
    EXPECT_EQ(v.detail, "verify deadline expired before the chain ran");
    EXPECT_EQ(v.steps, 0u);
  }
}

TEST_F(VerifyFixture, InProcessChaosLandsOnTheSameChainAtAnyJobCount) {
  // The chaos decision is serial in chain order, so `site*1` demotes the
  // same (first) chain whether the shards then run serially or on a pool.
  auto run_with_one_crash = [this](util::Executor* executor) {
    util::failpoint::arm();
    util::failpoint::activate("runtime.verify.crash", 1);
    finder::VerifyOptions options;
    options.executor = executor;
    finder::VerifyReport report = run_verify(options);
    util::failpoint::deactivate_all();
    util::failpoint::disarm();
    return report;
  };

  finder::VerifyReport serial = run_with_one_crash(nullptr);
  EXPECT_EQ(serial.unconfirmed, 1u);
  EXPECT_EQ(serial.verdicts[0].verdict, finder::Verdict::Unconfirmed);
  EXPECT_EQ(serial.verdicts[0].reason, finder::UnconfirmedReason::Crash);
  EXPECT_NE(serial.verdicts[0].detail.find("runtime.verify.crash"), std::string::npos);

  util::ThreadPool pool(4);
  finder::VerifyReport pooled = run_with_one_crash(&pool);
  EXPECT_EQ(verdict_text(pooled), verdict_text(serial));
}

TEST_F(VerifyFixture, InProcessHangChaosDemotesToTimeout) {
  util::failpoint::arm();
  util::failpoint::activate("runtime.verify.hang", 1);
  finder::VerifyReport report = run_verify({});
  ASSERT_GE(report.verdicts.size(), 1u);
  EXPECT_EQ(report.verdicts[0].verdict, finder::Verdict::Unconfirmed);
  EXPECT_EQ(report.verdicts[0].reason, finder::UnconfirmedReason::Timeout);
  EXPECT_NE(finder::degraded_line(world().chains[0], report.verdicts[0])
                .find("degraded: [verify-timeout] "),
            std::string::npos);
}

TEST_F(VerifyFixture, DistAbsorbedCrashKeepsVerdictBytes) {
  finder::VerifyReport serial = run_verify({});
  util::failpoint::arm();
  util::failpoint::activate("runtime.verify.crash", 1);
  finder::VerifyOptions options;
  options.dist = fast(2);
  finder::VerifyReport dist = run_verify(options);
  EXPECT_EQ(verdict_text(dist), verdict_text(serial));
  EXPECT_EQ(dist.unconfirmed, 0u);
  EXPECT_EQ(dist.dist_stats.crashes, 1u);
  EXPECT_GE(dist.dist_stats.retries, 1u);
  EXPECT_EQ(util::failpoint::fired("runtime.verify.crash"), 1u);
}

TEST_F(VerifyFixture, DistAbsorbedHangKeepsVerdictBytes) {
  finder::VerifyReport serial = run_verify({});
  util::failpoint::arm();
  util::failpoint::activate("runtime.verify.hang", 1);
  finder::VerifyOptions options;
  options.dist = fast(1);
  finder::VerifyReport dist = run_verify(options);
  EXPECT_EQ(verdict_text(dist), verdict_text(serial));
  EXPECT_GE(dist.dist_stats.heartbeat_misses, 1u);
  EXPECT_GE(dist.dist_stats.crashes, 1u);  // the hung verifier is SIGKILLed
}

TEST_F(VerifyFixture, DistRetryExhaustionDemotesEveryChainNotTheCoordinator) {
  util::failpoint::arm();
  util::failpoint::activate("runtime.verify.crash");  // unlimited: every dispatch dies
  finder::VerifyOptions options;
  options.dist = fast(2);
  finder::VerifyReport report = run_verify(options);
  ASSERT_EQ(report.verdicts.size(), world().chains.size());
  EXPECT_EQ(report.unconfirmed, world().chains.size());
  for (std::size_t i = 0; i < report.verdicts.size(); ++i) {
    const finder::ChainVerdict& v = report.verdicts[i];
    EXPECT_EQ(finder::verdict_line(v), "UNCONFIRMED(crash)");
    EXPECT_NE(v.detail.find("worker crashed"), std::string::npos) << v.detail;
    EXPECT_NE(v.detail.find("3 attempts"), std::string::npos) << v.detail;
    std::string line = finder::degraded_line(world().chains[i], v);
    EXPECT_NE(line.find("degraded: [verify-crash] "), std::string::npos) << line;
    EXPECT_NE(line.find("; chain kept as UNCONFIRMED"), std::string::npos) << line;
  }
}

// --- verdict cache hooks ---------------------------------------------------

struct MapCache {
  std::map<std::uint64_t, finder::ChainVerdict> entries;
  std::size_t loads = 0;

  void wire(finder::VerifyOptions& options) {
    options.cache_fingerprint = 0x7ab1;
    options.cache_load = [this](std::uint64_t key) -> std::optional<finder::ChainVerdict> {
      ++loads;
      auto it = entries.find(key);
      if (it == entries.end()) return std::nullopt;
      return it->second;
    };
    options.cache_store = [this](std::uint64_t key, const finder::ChainVerdict& v) {
      entries[key] = v;
    };
  }
};

TEST_F(VerifyFixture, WarmCacheAnswersEveryChainWithoutReExecution) {
  MapCache cache;
  finder::VerifyOptions options;
  cache.wire(options);

  finder::VerifyReport cold = run_verify(options);
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(cache.entries.size(), world().chains.size());  // all deterministic

  finder::VerifyReport warm = run_verify(options);
  EXPECT_EQ(warm.cache_hits, world().chains.size());
  for (const finder::ChainVerdict& v : warm.verdicts) EXPECT_TRUE(v.from_cache);
  EXPECT_EQ(verdict_text(warm), verdict_text(cold));
  EXPECT_EQ(warm.steps_total, cold.steps_total);  // hits replay their recorded cost
}

TEST_F(VerifyFixture, TransientVerdictsAreNeverCached) {
  MapCache cache;
  finder::VerifyOptions options;
  cache.wire(options);
  util::failpoint::arm();
  util::failpoint::activate("runtime.verify.crash");  // every chain demoted
  finder::VerifyReport report = run_verify(options);
  EXPECT_EQ(report.unconfirmed, world().chains.size());
  EXPECT_TRUE(cache.entries.empty());  // crash demotions must not poison warm runs
}

TEST_F(VerifyFixture, ZeroFingerprintDisablesTheCacheEntirely) {
  MapCache cache;
  finder::VerifyOptions options;
  cache.wire(options);
  options.cache_fingerprint = 0;
  finder::VerifyReport report = run_verify(options);
  EXPECT_EQ(report.cache_hits, 0u);
  EXPECT_EQ(cache.loads, 0u);
  EXPECT_TRUE(cache.entries.empty());
}

TEST_F(VerifyFixture, CacheKeysTrackBudgetsAndChainIdentity) {
  finder::VerifyOptions a, b;
  b.max_steps_per_chain = a.max_steps_per_chain + 1;
  EXPECT_NE(finder::verify_options_fingerprint(a), finder::verify_options_fingerprint(b));
  ASSERT_GE(world().chains.size(), 2u);
  std::uint64_t fp = finder::verify_options_fingerprint(a);
  EXPECT_NE(finder::verdict_key(fp, world().chains[0]), finder::verdict_key(fp, world().chains[1]));
  EXPECT_NE(finder::verdict_key(fp, world().chains[0]),
            finder::verdict_key(fp + 1, world().chains[0]));
}

// --- CLI -------------------------------------------------------------------

struct CliRun {
  int code = 0;
  std::string out;
  std::string err;
};

CliRun run_cli_capture(std::vector<std::string> args) {
  std::ostringstream out, err;
  CliRun result;
  result.code = cli::run_cli(args, out, err);
  result.out = out.str();
  result.err = err.str();
  return result;
}

/// Drops the wall-clock header line — the only non-deterministic bytes in
/// `tabby find` output.
std::string strip_timing(const std::string& text) {
  std::istringstream lines(text);
  std::string line, kept;
  while (std::getline(lines, line)) {
    if (line.find(" s search") != std::string::npos) continue;
    kept += line;
    kept += '\n';
  }
  return kept;
}

class VerifyCliFixture : public VerifyFixture {
 protected:
  void SetUp() override {
    VerifyFixture::SetUp();
    dir_ = fs::temp_directory_path() / ("tabby_verify_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
    jar_ = (dir_ / "beanshell.tjar").string();
    ASSERT_TRUE(jar::write_archive_file(corpus::build_component("BeanShell1").jar, jar_).ok());
  }

  void TearDown() override {
    fs::remove_all(dir_);
    VerifyFixture::TearDown();
  }

  fs::path dir_;
  std::string jar_;
};

TEST_F(VerifyCliFixture, CliVerifyIsByteIdenticalAtAnyVerifyWorkerCount) {
  CliRun base = run_cli_capture({"find", jar_, "--verify"});
  ASSERT_EQ(base.code, 0) << base.err;
  EXPECT_NE(base.out.find("auto-verify: EFFECTIVE"), std::string::npos) << base.out;
  EXPECT_NE(base.out.find("auto-verify: REFUTED"), std::string::npos) << base.out;
  EXPECT_NE(base.out.find("chains confirmed effective"), std::string::npos) << base.out;
  EXPECT_EQ(base.out.find("unconfirmed"), std::string::npos) << base.out;
  for (const char* workers : {"1", "2", "4"}) {
    CliRun dist = run_cli_capture({"find", jar_, "--verify", "--verify-workers", workers});
    EXPECT_EQ(dist.code, 0) << dist.err;
    EXPECT_EQ(strip_timing(dist.out), strip_timing(base.out)) << "verify-workers=" << workers;
    EXPECT_EQ(dist.err, base.err) << "verify-workers=" << workers;
  }
}

TEST_F(VerifyCliFixture, CliVerifyIsByteIdenticalFrozenVsStore) {
  CliRun frozen = run_cli_capture({"find", jar_, "--verify"});
  ASSERT_EQ(frozen.code, 0) << frozen.err;
  CliRun store = run_cli_capture({"find", jar_, "--verify", "--no-frozen"});
  ASSERT_EQ(store.code, 0) << store.err;
  EXPECT_EQ(strip_timing(store.out), strip_timing(frozen.out));
  EXPECT_EQ(store.err, frozen.err);
}

TEST_F(VerifyCliFixture, CliVerifyAbsorbsACrashByteIdentically) {
  CliRun base = run_cli_capture({"find", jar_, "--verify"});
  ASSERT_EQ(base.code, 0) << base.err;
  util::failpoint::arm();
  util::failpoint::activate("runtime.verify.crash", 2);
  CliRun dist = run_cli_capture({"find", jar_, "--verify", "--verify-workers", "2"});
  EXPECT_EQ(dist.code, 0) << dist.err;
  EXPECT_EQ(strip_timing(dist.out), strip_timing(base.out));
  EXPECT_EQ(dist.err, base.err);
}

TEST_F(VerifyCliFixture, CliVerifyRetryExhaustionExitsDegradedWithChainsKept) {
  util::failpoint::arm();
  util::failpoint::activate("runtime.verify.crash");  // unlimited
  CliRun dist = run_cli_capture({"find", jar_, "--verify", "--verify-workers", "2"});
  EXPECT_EQ(dist.code, 3);  // degraded, never a coordinator crash
  EXPECT_NE(dist.out.find("0/"), std::string::npos) << dist.out;
  EXPECT_NE(dist.out.find("unconfirmed"), std::string::npos) << dist.out;
  EXPECT_NE(dist.out.find("auto-verify: UNCONFIRMED(crash)"), std::string::npos) << dist.out;
  EXPECT_NE(dist.err.find("degraded: [verify-crash] "), std::string::npos) << dist.err;
  EXPECT_NE(dist.err.find("; chain kept as UNCONFIRMED"), std::string::npos) << dist.err;
  // The chains themselves stay in the report: same chain count as a clean run.
  util::failpoint::deactivate_all();
  util::failpoint::disarm();
  CliRun clean = run_cli_capture({"find", jar_});
  std::size_t clean_arrows = 0, degraded_arrows = 0;
  for (std::size_t pos = 0; (pos = clean.out.find(" -> ", pos)) != std::string::npos; ++pos)
    ++clean_arrows;
  for (std::size_t pos = 0; (pos = dist.out.find(" -> ", pos)) != std::string::npos; ++pos)
    ++degraded_arrows;
  EXPECT_EQ(degraded_arrows, clean_arrows);
}

TEST_F(VerifyCliFixture, CliStrictPromotesUnconfirmedToFatal) {
  util::failpoint::arm();
  util::failpoint::activate("runtime.verify.crash");
  CliRun dist = run_cli_capture({"find", jar_, "--verify", "--verify-workers", "2", "--strict"});
  EXPECT_EQ(dist.code, 1);
  EXPECT_NE(dist.err.find("error: runtime re-validation left"), std::string::npos) << dist.err;
  EXPECT_NE(dist.err.find("UNCONFIRMED"), std::string::npos) << dist.err;
}

TEST_F(VerifyCliFixture, CliVmFaultChaosDegradesInsteadOfCrashing) {
  // runtime.step fires inside the interpreter loop: the poisoned chain is
  // demoted to UNCONFIRMED(fault); the run survives and says why.
  util::failpoint::arm();
  util::failpoint::activate("runtime.step", 1);
  CliRun run = run_cli_capture({"find", jar_, "--verify"});
  EXPECT_EQ(run.code, 3) << run.err;
  EXPECT_NE(run.out.find("auto-verify: UNCONFIRMED(fault)"), std::string::npos) << run.out;
  EXPECT_NE(run.err.find("degraded: [verify-fault] "), std::string::npos) << run.err;
  EXPECT_NE(run.err.find("interpreter fault injected"), std::string::npos) << run.err;

  // Recovery: the next (disarmed) run is clean again.
  util::failpoint::deactivate_all();
  util::failpoint::disarm();
  CliRun clean = run_cli_capture({"find", jar_, "--verify"});
  EXPECT_EQ(clean.code, 0) << clean.err;
}

TEST_F(VerifyCliFixture, CliWarmVerdictCacheIsByteIdenticalAndAuditable) {
  std::string cache_dir = (dir_ / "cache").string();
  CliRun cold = run_cli_capture({"find", jar_, "--verify", "--cache", cache_dir});
  ASSERT_EQ(cold.code, 0) << cold.err;

  // The deterministic verdicts were published as .tvdt frames.
  fs::path verdicts = fs::path(cache_dir) / "verdicts";
  ASSERT_TRUE(fs::exists(verdicts));
  std::size_t frames = 0;
  for (const auto& entry : fs::directory_iterator(verdicts)) {
    EXPECT_EQ(entry.path().extension(), ".tvdt");
    ++frames;
  }
  EXPECT_GE(frames, 1u);

  // The snapshot-cache header legitimately flips miss -> hit; everything
  // else (chains, verdicts, summary) must not move a byte.
  auto strip_cache_header = [](const std::string& text) {
    std::istringstream lines(text);
    std::string line, kept;
    while (std::getline(lines, line)) {
      if (line.rfind("cache: ", 0) == 0) continue;
      kept += line;
      kept += '\n';
    }
    return kept;
  };
  CliRun warm = run_cli_capture({"find", jar_, "--verify", "--cache", cache_dir});
  EXPECT_EQ(warm.code, 0) << warm.err;
  EXPECT_EQ(strip_cache_header(strip_timing(warm.out)), strip_cache_header(strip_timing(cold.out)));

  // The offline audit knows about verdict frames and reports them healthy.
  CliRun audit = run_cli_capture({"cache", cache_dir});
  EXPECT_EQ(audit.code, 0) << audit.err;
  EXPECT_NE(audit.out.find("verdict(s)"), std::string::npos) << audit.out;
  EXPECT_NE(audit.out.find("0 corrupt"), std::string::npos) << audit.out;
}

// --- serve -----------------------------------------------------------------

class VerifyServeFixture : public VerifyCliFixture {
 protected:
  void TearDown() override {
    stop_daemon();
    VerifyCliFixture::TearDown();
  }

  void start_daemon() {
    static int counter = 0;
    socket_ = "/tmp/tvfy_" + std::to_string(::getpid()) + "_" + std::to_string(counter++);
    std::vector<std::string> args{"serve", socket_};
    daemon_ = std::thread([this, args] { daemon_code_ = cli::run_cli(args, daemon_out_, daemon_err_); });
  }

  void stop_daemon() {
    if (!daemon_.joinable()) return;
    run_cli_capture({"client", socket_, "shutdown"});
    daemon_.join();
    EXPECT_EQ(daemon_code_, 0) << daemon_err_.str();
  }

  std::optional<serve::Json> round_trip(const serve::Json& request) {
    auto reply = serve::client_request(socket_, request.dump());
    if (!reply.ok()) {
      ADD_FAILURE() << "client_request failed: " << reply.error().to_string();
      return std::nullopt;
    }
    return serve::Json::parse(reply.value());
  }

  serve::Json verify_request() const {
    serve::Json request = serve::Json::object();
    request.set("op", "find");
    serve::Json jars = serve::Json::array();
    jars.push(serve::Json::string(jar_));
    request.set("classpath", std::move(jars));
    request.set("verify", true);
    return request;
  }

  std::string socket_;
  std::thread daemon_;
  int daemon_code_ = -1;
  std::ostringstream daemon_out_;
  std::ostringstream daemon_err_;
};

TEST_F(VerifyServeFixture, ServeVerifyMatchesOneShotAndSurfacesVerdictCounts) {
  CliRun one_shot = run_cli_capture({"find", jar_, "--verify"});
  ASSERT_EQ(one_shot.code, 0) << one_shot.err;

  start_daemon();
  auto response = round_trip(verify_request());
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(response->flag("ok")) << response->str("error");
  EXPECT_EQ(strip_timing(response->str("text")), strip_timing(one_shot.out));
  EXPECT_TRUE(response->flag("verified"));
  EXPECT_GE(response->num("effective"), 1.0);
  EXPECT_EQ(response->num("unconfirmed"), 0.0);
  EXPECT_EQ(response->num("effective") + response->num("refuted") + response->num("unconfirmed"),
            static_cast<double>(world().chains.size()));
}

TEST_F(VerifyServeFixture, ServeVerifyExhaustionReportsUnconfirmedChainsStructurally) {
  start_daemon();
  util::failpoint::arm();
  util::failpoint::activate("runtime.verify.crash");  // unlimited
  serve::Json request = verify_request();
  request.set("verify_workers", std::int64_t{2});
  auto response = round_trip(request);
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(response->flag("ok")) << response->str("error");  // degraded, not an error
  EXPECT_TRUE(response->flag("verified"));
  EXPECT_EQ(response->num("effective"), 0.0);
  EXPECT_GE(response->num("unconfirmed"), 1.0);
  std::vector<std::string> lines = response->strings("degraded_lines");
  ASSERT_FALSE(lines.empty());
  bool found = false;
  for (const std::string& line : lines) {
    if (line.find("degraded: [verify-crash] ") != std::string::npos &&
        line.find("; chain kept as UNCONFIRMED") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << response->str("text");
}

}  // namespace
}  // namespace tabby
