// The fault-tolerant multi-process finder fan-out (src/dist): supervised
// forked workers, crash/hang/dispatch chaos absorbed by bounded retry,
// deterministic backoff, and — at every layer from dist::run_shards up
// through finder, engine, CLI and the serve daemon — the two contracts the
// subsystem exists for:
//
//   1. `--workers N` output is byte-identical to `--workers 0` at any N,
//      including under absorbed worker crashes;
//   2. retry exhaustion degrades into a structured PartialSink with
//      PartialReason::WorkerFailure (CLI exit 3), never a coordinator crash,
//      merging stably with coexisting degradation sources (memory pressure,
//      deadlines).
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "cli/cli.hpp"
#include "corpus/components.hpp"
#include "corpus/jdk.hpp"
#include "corpus/stress.hpp"
#include "cpg/builder.hpp"
#include "dist/dist.hpp"
#include "finder/finder.hpp"
#include "jar/archive.hpp"
#include "pipeline/engine.hpp"
#include "serve/json.hpp"
#include "serve/serve.hpp"
#include "util/deadline.hpp"
#include "util/failpoint.hpp"

namespace tabby {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

/// Every test leaves the process-global failpoint harness disarmed so
/// ordering never matters (the chaos tests arm it programmatically).
class DistFixture : public ::testing::Test {
 protected:
  void SetUp() override { util::failpoint::disarm(); }
  void TearDown() override {
    util::failpoint::deactivate_all();
    util::failpoint::disarm();
  }

  /// Unit-test friendly supervision timings: the 2 s production hang
  /// timeout would dominate the suite's wall clock.
  static dist::DistOptions fast(int workers) {
    dist::DistOptions options;
    options.workers = workers;
    options.heartbeat_interval = 20ms;
    options.hang_timeout = 250ms;
    return options;
  }
};

// --- dist::run_shards ------------------------------------------------------

TEST_F(DistFixture, ShardsRunToCompletionAcrossForkedWorkers) {
  dist::DistReport report = dist::run_shards(
      8, [](std::size_t shard) { return std::to_string(shard * shard + 1); }, fast(3));
  ASSERT_EQ(report.shards.size(), 8u);
  for (std::size_t i = 0; i < report.shards.size(); ++i) {
    EXPECT_TRUE(report.shards[i].ok) << report.shards[i].error;
    EXPECT_EQ(report.shards[i].payload, std::to_string(i * i + 1));
    EXPECT_EQ(report.shards[i].attempts, 1);
  }
  EXPECT_EQ(report.stats.workers_spawned, 3u);
  EXPECT_EQ(report.stats.crashes, 0u);
  EXPECT_EQ(report.stats.retries, 0u);
  EXPECT_EQ(report.stats.respawns, 0u);
}

TEST_F(DistFixture, PoolIsCappedAtTheShardCount) {
  dist::DistReport report =
      dist::run_shards(2, [](std::size_t shard) { return std::to_string(shard); }, fast(8));
  ASSERT_EQ(report.shards.size(), 2u);
  EXPECT_EQ(report.stats.workers_spawned, 2u);  // never more workers than work
}

TEST_F(DistFixture, ZeroWorkersRunsInProcessWithoutForking) {
  dist::DistReport report =
      dist::run_shards(3, [](std::size_t shard) { return std::to_string(shard); }, fast(0));
  ASSERT_EQ(report.shards.size(), 3u);
  for (const dist::ShardResult& shard : report.shards) EXPECT_TRUE(shard.ok);
  EXPECT_EQ(report.stats.workers_spawned, 0u);
  EXPECT_FALSE(report.stats.any());
}

TEST_F(DistFixture, InProcessExceptionIsAStructuredFailure) {
  dist::DistReport report = dist::run_shards(
      3,
      [](std::size_t shard) -> std::string {
        if (shard == 1) throw std::runtime_error("boom");
        return "ok";
      },
      fast(0));
  ASSERT_EQ(report.shards.size(), 3u);
  EXPECT_TRUE(report.shards[0].ok);
  EXPECT_FALSE(report.shards[1].ok);
  EXPECT_NE(report.shards[1].error.find("boom"), std::string::npos) << report.shards[1].error;
  EXPECT_TRUE(report.shards[2].ok);
}

TEST_F(DistFixture, WorkerExceptionIsRetriedThenReportedStructurally) {
  // A deterministic ShardFn throw fails on every attempt but never kills the
  // worker: the child catches, replies ok:false and stays in the pool.
  dist::DistReport report = dist::run_shards(
      3,
      [](std::size_t shard) -> std::string {
        if (shard == 1) throw std::runtime_error("boom");
        return std::to_string(shard);
      },
      fast(2));
  ASSERT_EQ(report.shards.size(), 3u);
  EXPECT_TRUE(report.shards[0].ok);
  EXPECT_TRUE(report.shards[2].ok);
  EXPECT_FALSE(report.shards[1].ok);
  EXPECT_EQ(report.shards[1].attempts, 3);  // DistOptions::max_attempts default
  EXPECT_NE(report.shards[1].error.find("boom"), std::string::npos) << report.shards[1].error;
  EXPECT_NE(report.shards[1].error.find("3 attempts"), std::string::npos)
      << report.shards[1].error;
  EXPECT_EQ(report.stats.retries, 2u);
  EXPECT_EQ(report.stats.crashes, 0u);
  EXPECT_EQ(report.stats.respawns, 0u);
}

TEST_F(DistFixture, CrashChaosIsAbsorbedByRespawnAndRetry) {
  util::failpoint::arm();
  util::failpoint::activate("dist.worker.crash", 1);
  dist::DistReport report =
      dist::run_shards(4, [](std::size_t shard) { return std::to_string(shard * 10); }, fast(2));
  ASSERT_EQ(report.shards.size(), 4u);
  for (std::size_t i = 0; i < report.shards.size(); ++i) {
    EXPECT_TRUE(report.shards[i].ok) << report.shards[i].error;
    EXPECT_EQ(report.shards[i].payload, std::to_string(i * 10));
  }
  EXPECT_EQ(report.stats.crashes, 1u);
  EXPECT_GE(report.stats.respawns, 1u);
  EXPECT_GE(report.stats.retries, 1u);
  EXPECT_EQ(util::failpoint::fired("dist.worker.crash"), 1u);
}

TEST_F(DistFixture, CrashRetryExhaustionIsStructuredNotFatal) {
  util::failpoint::arm();
  util::failpoint::activate("dist.worker.crash");  // every dispatch crashes
  dist::DistReport report =
      dist::run_shards(2, [](std::size_t shard) { return std::to_string(shard); }, fast(2));
  ASSERT_EQ(report.shards.size(), 2u);
  for (const dist::ShardResult& shard : report.shards) {
    EXPECT_FALSE(shard.ok);
    EXPECT_EQ(shard.attempts, 3);
    EXPECT_NE(shard.error.find("worker crashed"), std::string::npos) << shard.error;
    EXPECT_NE(shard.error.find("3 attempts"), std::string::npos) << shard.error;
  }
  // Every dispatch of every attempt crashed: 2 shards x 3 attempts.
  EXPECT_EQ(report.stats.crashes, 6u);
}

TEST_F(DistFixture, HangChaosIsDetectedByHeartbeatMiss) {
  util::failpoint::arm();
  util::failpoint::activate("dist.worker.hang", 1);
  dist::DistReport report =
      dist::run_shards(2, [](std::size_t shard) { return std::to_string(shard); }, fast(1));
  ASSERT_EQ(report.shards.size(), 2u);
  for (const dist::ShardResult& shard : report.shards) {
    EXPECT_TRUE(shard.ok) << shard.error;
  }
  EXPECT_GE(report.stats.heartbeat_misses, 1u);
  EXPECT_GE(report.stats.crashes, 1u);  // the hung worker is SIGKILLed
  EXPECT_GE(report.stats.retries, 1u);
}

TEST_F(DistFixture, DispatchFaultIsRetriedWithoutAKill) {
  util::failpoint::arm();
  util::failpoint::activate("dist.dispatch", 1);
  dist::DistReport report =
      dist::run_shards(2, [](std::size_t shard) { return std::to_string(shard); }, fast(1));
  ASSERT_EQ(report.shards.size(), 2u);
  for (const dist::ShardResult& shard : report.shards) {
    EXPECT_TRUE(shard.ok) << shard.error;
  }
  EXPECT_GE(report.stats.retries, 1u);
  EXPECT_EQ(report.stats.crashes, 0u);
  EXPECT_EQ(report.stats.respawns, 0u);
}

TEST_F(DistFixture, RetryBackoffIsDeterministicAndExponential) {
  dist::DistOptions options;  // base 1 ms, fixed seed
  for (std::size_t shard : {std::size_t{0}, std::size_t{5}}) {
    for (int attempt : {1, 2, 3}) {
      EXPECT_EQ(dist::retry_backoff(options, shard, attempt),
                dist::retry_backoff(options, shard, attempt));
    }
    // attempt n: base * 2^(n-1) plus jitter < half the base delay, so the
    // attempt-2 floor clears the attempt-1 ceiling.
    auto first = dist::retry_backoff(options, shard, 1);
    auto second = dist::retry_backoff(options, shard, 2);
    EXPECT_GE(first, 1000us);
    EXPECT_LE(first, 1501us);
    EXPECT_GE(second, 2000us);
    EXPECT_LE(second, 3001us);
    EXPECT_GT(second, first);
  }
  // The exponent is clamped: pathological attempt numbers neither overflow
  // nor lose determinism.
  EXPECT_EQ(dist::retry_backoff(options, 0, 60), dist::retry_backoff(options, 0, 60));
  EXPECT_GT(dist::retry_backoff(options, 0, 60).count(), 0);
}

// --- finder integration ----------------------------------------------------

/// One shared component CPG for the finder-level suite (BeanShell1 linked
/// against the jdk base, same shape the CLI builds).
const graph::GraphDb& component_db() {
  static cpg::Cpg cpg = [] {
    jir::Program program =
        jar::link({corpus::jdk_base_archive(), corpus::build_component("BeanShell1").jar});
    return cpg::build_cpg(program, {});
  }();
  return cpg.db;
}

/// The pathological fan-out fixture: small enough for unit tests, wide
/// enough that a tiny frontier pool forces MemoryPressure partials — on two
/// sinks (dual_sink), so one of them survives the crash chaos that always
/// lands on shard 0 (the lowest sink id) and still reports memory pressure.
const graph::GraphDb& stress_db() {
  static cpg::Cpg cpg = [] {
    corpus::FanoutStressSpec spec;
    spec.hops = 12;
    spec.aliases = 200;
    spec.call_fans = 4;
    spec.dual_sink = true;
    jir::Program program =
        jar::link({corpus::jdk_base_archive(), corpus::fanout_stress_archive(spec)});
    return cpg::build_cpg(program, {});
  }();
  return cpg.db;
}

std::string chain_text(const finder::FinderReport& report) {
  std::string text;
  for (const finder::GadgetChain& chain : report.chains) {
    text += chain.to_string();
    text += "\n";
  }
  return text;
}

std::set<std::string> chain_keys(const finder::FinderReport& report) {
  std::set<std::string> keys;
  for (const finder::GadgetChain& chain : report.chains) keys.insert(chain.key());
  return keys;
}

bool partials_sorted_by_sink(const finder::FinderReport& report) {
  return std::is_sorted(
      report.partial_sinks.begin(), report.partial_sinks.end(),
      [](const finder::PartialSink& a, const finder::PartialSink& b) { return a.sink < b.sink; });
}

TEST_F(DistFixture, FinderReportIsByteIdenticalAtAnyWorkerCount) {
  finder::FinderOptions base;
  finder::FinderReport serial = finder::GadgetChainFinder(component_db(), base).find_all();
  ASSERT_GE(serial.chains.size(), 1u);
  EXPECT_TRUE(serial.partial_sinks.empty());

  for (int workers : {1, 2, 4}) {
    finder::FinderOptions options;
    options.dist = fast(workers);
    finder::FinderReport dist = finder::GadgetChainFinder(component_db(), options).find_all();
    EXPECT_EQ(chain_text(dist), chain_text(serial)) << "workers=" << workers;
    EXPECT_TRUE(dist.partial_sinks.empty()) << "workers=" << workers;
    EXPECT_EQ(dist.expansions, serial.expansions) << "workers=" << workers;
    EXPECT_GT(dist.dist_stats.workers_spawned, 0u);
  }
}

TEST_F(DistFixture, AbsorbedCrashKeepsTheFinderReportByteIdentical) {
  finder::FinderOptions base;
  finder::FinderReport serial = finder::GadgetChainFinder(component_db(), base).find_all();

  util::failpoint::arm();
  util::failpoint::activate("dist.worker.crash", 1);
  finder::FinderOptions options;
  options.dist = fast(2);
  finder::FinderReport dist = finder::GadgetChainFinder(component_db(), options).find_all();

  EXPECT_EQ(chain_text(dist), chain_text(serial));
  EXPECT_TRUE(dist.partial_sinks.empty());
  EXPECT_EQ(dist.dist_stats.crashes, 1u);
  EXPECT_GE(dist.dist_stats.retries, 1u);
}

TEST_F(DistFixture, WorkerFailureMergesStablyWithMemoryPressure) {
  // Degraded shard 0 (max_attempts=1, one crash firing on the first
  // dispatch) next to memory-governed siblings: the merged partial_sinks
  // list carries both reasons, stays in ascending sink order, and the
  // chains that survive are a subset of the clean run's.
  finder::FinderOptions clean;
  clean.max_depth = 16;  // the planted chains are hops + 1 deep
  finder::FinderReport free_run = finder::GadgetChainFinder(stress_db(), clean).find_all();

  util::failpoint::arm();
  util::failpoint::activate("dist.worker.crash", 1);
  finder::FinderOptions options;
  options.max_depth = 16;
  options.frontier_byte_pool = 64 * 1024;
  options.dist = fast(1);
  options.dist.max_attempts = 1;  // the single crash exhausts shard 0
  finder::FinderReport report = finder::GadgetChainFinder(stress_db(), options).find_all();

  ASSERT_GE(report.partial_sinks.size(), 2u);
  EXPECT_TRUE(partials_sorted_by_sink(report));
  std::size_t worker_failures = 0, memory_partials = 0;
  for (const finder::PartialSink& sink : report.partial_sinks) {
    if (sink.reason == finder::PartialReason::WorkerFailure) {
      ++worker_failures;
      EXPECT_NE(sink.detail.find("worker crashed"), std::string::npos) << sink.detail;
      EXPECT_NE(finder::degraded_line(sink).find("degraded: [finder-worker] "), std::string::npos);
    }
    if (sink.reason == finder::PartialReason::MemoryPressure) ++memory_partials;
  }
  EXPECT_EQ(worker_failures, 1u);
  EXPECT_GE(memory_partials, 1u);
  // The first dispatched shard is the lowest sink id, so the worker failure
  // leads the merged list.
  EXPECT_EQ(report.partial_sinks.front().reason, finder::PartialReason::WorkerFailure);

  std::set<std::string> free_keys = chain_keys(free_run);
  for (const std::string& key : chain_keys(report)) {
    EXPECT_EQ(free_keys.count(key), 1u) << "invented chain " << key;
  }
}

TEST_F(DistFixture, WorkerFailureMergesStablyWithDeadlineExpiry) {
  util::failpoint::arm();
  util::failpoint::activate("dist.worker.crash", 1);
  finder::FinderOptions options;
  options.deadline = util::Deadline::after(0ms);  // every surviving shard expires
  options.dist = fast(1);
  options.dist.max_attempts = 1;
  finder::FinderReport report = finder::GadgetChainFinder(component_db(), options).find_all();

  ASSERT_GE(report.partial_sinks.size(), 2u);
  EXPECT_TRUE(partials_sorted_by_sink(report));
  EXPECT_EQ(report.partial_sinks.front().reason, finder::PartialReason::WorkerFailure);
  std::size_t worker_failures = 0, deadline_partials = 0;
  for (const finder::PartialSink& sink : report.partial_sinks) {
    if (sink.reason == finder::PartialReason::WorkerFailure) ++worker_failures;
    if (sink.reason == finder::PartialReason::Deadline) {
      ++deadline_partials;
      EXPECT_NE(finder::degraded_line(sink).find("degraded: [finder-deadline] "),
                std::string::npos);
    }
  }
  EXPECT_EQ(worker_failures, 1u);
  EXPECT_GE(deadline_partials, 1u);
}

// --- CLI / engine / serve --------------------------------------------------

struct CliRun {
  int code = 0;
  std::string out;
  std::string err;
};

CliRun run_cli_capture(std::vector<std::string> args) {
  std::ostringstream out, err;
  CliRun result;
  result.code = cli::run_cli(args, out, err);
  result.out = out.str();
  result.err = err.str();
  return result;
}

/// Drops the wall-clock header line ("N gadget chain(s), T s search") —
/// the only non-deterministic bytes in `tabby find` output.
std::string strip_timing(const std::string& text) {
  std::istringstream lines(text);
  std::string line, kept;
  while (std::getline(lines, line)) {
    if (line.find(" s search") != std::string::npos) continue;
    kept += line;
    kept += '\n';
  }
  return kept;
}

class DistCliFixture : public DistFixture {
 protected:
  void SetUp() override {
    DistFixture::SetUp();
    dir_ = fs::temp_directory_path() / ("tabby_dist_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
    jar_ = (dir_ / "beanshell.tjar").string();
    ASSERT_TRUE(jar::write_archive_file(corpus::build_component("BeanShell1").jar, jar_).ok());
  }

  void TearDown() override {
    fs::remove_all(dir_);
    DistFixture::TearDown();
  }

  fs::path dir_;
  std::string jar_;
};

TEST_F(DistCliFixture, CliFindIsByteIdenticalAtAnyWorkerCount) {
  CliRun serial = run_cli_capture({"find", jar_});
  ASSERT_EQ(serial.code, 0) << serial.err;
  for (const char* workers : {"1", "2", "4"}) {
    CliRun dist = run_cli_capture({"find", jar_, "--workers", workers});
    EXPECT_EQ(dist.code, 0) << dist.err;
    EXPECT_EQ(strip_timing(dist.out), strip_timing(serial.out)) << "workers=" << workers;
    EXPECT_EQ(dist.err, serial.err) << "workers=" << workers;
  }
}

TEST_F(DistCliFixture, CliFindAbsorbsACrashByteIdentically) {
  CliRun serial = run_cli_capture({"find", jar_});
  ASSERT_EQ(serial.code, 0) << serial.err;
  util::failpoint::arm();
  util::failpoint::activate("dist.worker.crash", 1);
  CliRun dist = run_cli_capture({"find", jar_, "--workers", "4"});
  EXPECT_EQ(dist.code, 0) << dist.err;
  EXPECT_EQ(strip_timing(dist.out), strip_timing(serial.out));
  EXPECT_EQ(dist.err, serial.err);
}

TEST_F(DistCliFixture, CliRetryExhaustionExitsDegradedWithNamedSinks) {
  util::failpoint::arm();
  util::failpoint::activate("dist.worker.crash");  // unlimited: every shard exhausts
  CliRun dist = run_cli_capture({"find", jar_, "--workers", "2"});
  EXPECT_EQ(dist.code, 3);  // degraded, never a coordinator crash
  EXPECT_NE(dist.out.find("0 gadget chain(s)"), std::string::npos) << dist.out;
  EXPECT_NE(dist.err.find("degraded: [finder-worker] "), std::string::npos) << dist.err;
  EXPECT_NE(dist.err.find("worker crashed (3 attempts)"), std::string::npos) << dist.err;
  // The failing sinks are named, one degraded line per sink.
  EXPECT_NE(dist.err.find("#"), std::string::npos) << dist.err;
}

TEST_F(DistCliFixture, EngineAccumulatesDistTelemetryAcrossFinds) {
  pipeline::Engine engine;
  pipeline::ExecContext serial_ctx;
  auto analysis = engine.open({jar_}, serial_ctx);
  ASSERT_TRUE(analysis.ok());
  pipeline::FindResult serial = analysis.value()->find(serial_ctx);
  EXPECT_EQ(engine.stats().dist_workers_spawned, 0u);  // in-process find

  util::failpoint::arm();
  util::failpoint::activate("dist.worker.crash", 1);
  pipeline::ExecContext dist_ctx;
  dist_ctx.workers = 2;
  pipeline::FindResult dist = analysis.value()->find(dist_ctx);
  EXPECT_EQ(chain_text(dist.report), chain_text(serial.report));

  pipeline::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.dist_workers_spawned, 2u);
  EXPECT_EQ(stats.dist_crashes, 1u);
  EXPECT_GE(stats.dist_respawns, 1u);
  EXPECT_GE(stats.dist_retries, 1u);
}

class DistServeFixture : public DistCliFixture {
 protected:
  void TearDown() override {
    stop_daemon();
    DistCliFixture::TearDown();
  }

  /// Starts `tabby serve` on a fresh short socket path inside a thread (the
  /// sun_path limit rules out paths under the test's temp dir).
  void start_daemon(std::vector<std::string> extra = {}) {
    static int counter = 0;
    socket_ = "/tmp/tdst_" + std::to_string(::getpid()) + "_" + std::to_string(counter++);
    std::vector<std::string> args{"serve", socket_};
    args.insert(args.end(), extra.begin(), extra.end());
    daemon_ = std::thread([this, args] { daemon_code_ = cli::run_cli(args, daemon_out_, daemon_err_); });
  }

  void stop_daemon() {
    if (!daemon_.joinable()) return;
    run_cli_capture({"client", socket_, "shutdown"});
    daemon_.join();
    EXPECT_EQ(daemon_code_, 0) << daemon_err_.str();
  }

  std::optional<serve::Json> round_trip(const serve::Json& request) {
    auto reply = serve::client_request(socket_, request.dump());
    if (!reply.ok()) {
      ADD_FAILURE() << "client_request failed: " << reply.error().to_string();
      return std::nullopt;
    }
    return serve::Json::parse(reply.value());
  }

  serve::Json find_request() const {
    serve::Json request = serve::Json::object();
    request.set("op", "find");
    serve::Json jars = serve::Json::array();
    jars.push(serve::Json::string(jar_));
    request.set("classpath", std::move(jars));
    return request;
  }

  std::string socket_;
  std::thread daemon_;
  int daemon_code_ = -1;
  std::ostringstream daemon_out_;
  std::ostringstream daemon_err_;
};

TEST_F(DistServeFixture, RequestWorkersFieldMatchesOneShotAndSurfacesDistStats) {
  CliRun one_shot = run_cli_capture({"find", jar_});
  ASSERT_EQ(one_shot.code, 0) << one_shot.err;

  start_daemon();
  serve::Json request = find_request();
  request.set("workers", std::int64_t{2});
  auto response = round_trip(request);
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(response->flag("ok")) << response->str("error");
  EXPECT_EQ(strip_timing(response->str("text")), strip_timing(one_shot.out));

  serve::Json stats_request = serve::Json::object();
  stats_request.set("op", "stats");
  auto stats = round_trip(stats_request);
  ASSERT_TRUE(stats.has_value());
  EXPECT_TRUE(stats->flag("ok"));
  EXPECT_EQ(stats->num("dist_workers_spawned"), 2.0);
  EXPECT_EQ(stats->num("dist_crashes"), 0.0);
}

TEST_F(DistServeFixture, DaemonDefaultWorkersApplyWhenTheRequestSendsNone) {
  CliRun one_shot = run_cli_capture({"find", jar_});
  ASSERT_EQ(one_shot.code, 0) << one_shot.err;

  start_daemon({"--workers", "2"});
  auto response = round_trip(find_request());
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(response->flag("ok")) << response->str("error");
  EXPECT_EQ(strip_timing(response->str("text")), strip_timing(one_shot.out));

  serve::Json stats_request = serve::Json::object();
  stats_request.set("op", "stats");
  auto stats = round_trip(stats_request);
  ASSERT_TRUE(stats.has_value());
  EXPECT_GE(stats->num("dist_workers_spawned"), 2.0);
}

}  // namespace
}  // namespace tabby
