// Cross-module property tests, swept over every Table IX component model:
// archive and text round trips, CPG structural invariants, chain soundness
// (every reported chain is a CALL/ALIAS-connected source-to-sink path whose
// Trigger_Condition survives), and persistence stability of search results.
#include <gtest/gtest.h>

#include "analysis/domain.hpp"
#include "corpus/components.hpp"
#include "cpg/builder.hpp"
#include "cpg/schema.hpp"
#include "finder/finder.hpp"
#include "graph/serialize.hpp"
#include "jir/parser.hpp"
#include "jir/printer.hpp"
#include "util/digest.hpp"
#include "util/thread_pool.hpp"

namespace tabby {
namespace {

class ComponentProperty : public ::testing::TestWithParam<std::string> {
 public:
  static std::string sanitize(const std::string& name) {
    std::string out = name;
    for (char& c : out) {
      if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
    }
    return out;
  }
};

TEST_P(ComponentProperty, ArchiveBinaryRoundTrip) {
  corpus::Component component = corpus::build_component(GetParam());
  auto bytes = jar::write_archive(component.jar);
  auto reread = jar::read_archive(bytes);
  ASSERT_TRUE(reread.ok()) << reread.error().to_string();
  ASSERT_EQ(reread.value().classes.size(), component.jar.classes.size());
  // Canonical text must be identical class-by-class.
  for (std::size_t i = 0; i < component.jar.classes.size(); ++i) {
    EXPECT_EQ(jir::to_text(reread.value().classes[i]), jir::to_text(component.jar.classes[i]));
  }
}

TEST_P(ComponentProperty, TextualRoundTrip) {
  corpus::Component component = corpus::build_component(GetParam());
  jir::Program program = component.link();
  std::string text = jir::to_text(program);
  auto reparsed = jir::parse_program(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().to_string();
  EXPECT_EQ(jir::to_text(reparsed.value()), text);
}

TEST_P(ComponentProperty, CpgStructuralInvariants) {
  corpus::Component component = corpus::build_component(GetParam());
  cpg::Cpg cpg = cpg::build_cpg(component.link());
  const graph::GraphDb& db = cpg.db;

  db.for_each_edge([&](const graph::Edge& e) {
    const graph::Node& from = db.node(e.from);
    const graph::Node& to = db.node(e.to);
    if (e.type == cpg::kHasEdge) {
      EXPECT_EQ(from.label, cpg::kClassLabel);
      EXPECT_EQ(to.label, cpg::kMethodLabel);
      // The method's CLASSNAME is its owning class's NAME.
      EXPECT_EQ(to.prop_string(std::string(cpg::kPropClassName)),
                from.prop_string(std::string(cpg::kPropName)));
    } else if (e.type == cpg::kExtendEdge || e.type == cpg::kInterfaceEdge) {
      EXPECT_EQ(from.label, cpg::kClassLabel);
      EXPECT_EQ(to.label, cpg::kClassLabel);
    } else if (e.type == cpg::kCallEdge) {
      EXPECT_EQ(from.label, cpg::kMethodLabel);
      EXPECT_EQ(to.label, cpg::kMethodLabel);
      // Every surviving CALL edge has a PP with at least one controllable
      // position (the PCG pruning invariant).
      const auto* pp = std::get_if<std::vector<std::int64_t>>(
          e.prop(std::string(cpg::kPropPollutedPosition)));
      ASSERT_NE(pp, nullptr);
      EXPECT_FALSE(pp->empty());
      bool any_controllable = false;
      for (std::int64_t w : *pp) any_controllable |= analysis::is_controllable(w);
      EXPECT_TRUE(any_controllable);
    } else if (e.type == cpg::kAliasEdge) {
      // ALIAS links methods with identical name and arity.
      EXPECT_EQ(from.prop_string(std::string(cpg::kPropName)),
                to.prop_string(std::string(cpg::kPropName)));
      EXPECT_EQ(from.prop_int(std::string(cpg::kPropParamCount)),
                to.prop_int(std::string(cpg::kPropParamCount)));
    }
  });

  // Every source node sits in a serializable class.
  for (graph::NodeId id : db.find_nodes(std::string(cpg::kMethodLabel),
                                        std::string(cpg::kPropIsSource), graph::Value{true})) {
    std::string owner = db.node(id).prop_string(std::string(cpg::kPropClassName));
    auto classes = db.find_nodes(std::string(cpg::kClassLabel), std::string(cpg::kPropName),
                                 graph::Value{owner});
    ASSERT_EQ(classes.size(), 1u);
    EXPECT_TRUE(db.node(classes[0]).prop_bool(std::string(cpg::kPropSerializable))) << owner;
  }
}

TEST_P(ComponentProperty, ReportedChainsAreConnectedSourceToSinkPaths) {
  corpus::Component component = corpus::build_component(GetParam());
  cpg::Cpg cpg = cpg::build_cpg(component.link());
  finder::GadgetChainFinder finder(cpg.db);
  for (const finder::GadgetChain& chain : finder.find_all().chains) {
    ASSERT_GE(chain.nodes.size(), 2u);
    EXPECT_TRUE(cpg.db.node(chain.nodes.front()).prop_bool(std::string(cpg::kPropIsSource)));
    EXPECT_TRUE(cpg.db.node(chain.nodes.back()).prop_bool(std::string(cpg::kPropIsSink)));
    for (std::size_t i = 0; i + 1 < chain.nodes.size(); ++i) {
      // Forward CALL (caller -> callee) or reverse ALIAS (override <- decl).
      bool connected =
          cpg.db.find_edge(chain.nodes[i], chain.nodes[i + 1], cpg::kCallEdge).has_value() ||
          cpg.db.find_edge(chain.nodes[i + 1], chain.nodes[i], cpg::kAliasEdge).has_value();
      EXPECT_TRUE(connected) << chain.signatures[i] << " -/-> " << chain.signatures[i + 1];
    }
    // No node repeats (NodePath uniqueness).
    std::set<graph::NodeId> unique(chain.nodes.begin(), chain.nodes.end());
    EXPECT_EQ(unique.size(), chain.nodes.size());
  }
}

TEST_P(ComponentProperty, SearchResultsSurviveGraphPersistence) {
  corpus::Component component = corpus::build_component(GetParam());
  cpg::Cpg cpg = cpg::build_cpg(component.link());
  finder::GadgetChainFinder before(cpg.db);
  auto chains_before = before.find_all().chains;

  auto loaded = graph::deserialize(graph::serialize(cpg.db));
  ASSERT_TRUE(loaded.ok());
  // Rebuild the indexes the finder relies on (persistence stores data, not
  // index structures — like a fresh Neo4j store after import).
  loaded.value().create_index(std::string(cpg::kMethodLabel), std::string(cpg::kPropIsSink));
  finder::GadgetChainFinder after(loaded.value());
  auto chains_after = after.find_all().chains;

  ASSERT_EQ(chains_after.size(), chains_before.size());
  std::multiset<std::string> keys_before, keys_after;
  for (const auto& c : chains_before) keys_before.insert(c.key());
  for (const auto& c : chains_after) keys_after.insert(c.key());
  EXPECT_EQ(keys_before, keys_after);
}

TEST_P(ComponentProperty, PrunedGraphIsSubsetOfUnpruned) {
  corpus::Component component = corpus::build_component(GetParam());
  jir::Program program = component.link();
  cpg::Cpg pruned = cpg::build_cpg(program);
  cpg::CpgOptions raw_options;
  raw_options.prune_uncontrollable_calls = false;
  cpg::Cpg raw = cpg::build_cpg(program, raw_options);
  EXPECT_LE(pruned.stats.call_edges, raw.stats.call_edges);
  EXPECT_EQ(pruned.stats.call_edges + pruned.stats.pruned_call_sites >= raw.stats.call_edges,
            true);
  // Pruning must not change what the finder reports (TC checking already
  // rejects those edges): result sets are identical.
  finder::GadgetChainFinder on_pruned(pruned.db);
  finder::GadgetChainFinder on_raw(raw.db);
  std::multiset<std::string> a, b;
  for (const auto& c : on_pruned.find_all().chains) a.insert(c.key());
  for (const auto& c : on_raw.find_all().chains) b.insert(c.key());
  EXPECT_EQ(a, b);
}

// --- Content-digest properties backing the incremental cache keys ---------

/// The digest of an archive is a pure function of its bytes: computing it
/// serially, in reverse enumeration order, or concurrently across a worker
/// pool yields the same value per archive. (Archive *ordering* still matters
/// to the combined snapshot key — the linker's first-wins rule — but never
/// to the per-archive digests the key is folded from.)
TEST(DigestProperty, StableAcrossOrderingsAndJobCounts) {
  const std::vector<std::string>& names = corpus::component_names();
  std::vector<std::vector<std::byte>> archives;
  for (const std::string& name : names) {
    archives.push_back(jar::write_archive(corpus::build_component(name).jar));
  }

  std::vector<std::uint64_t> forward(archives.size()), reverse(archives.size()),
      parallel(archives.size());
  for (std::size_t i = 0; i < archives.size(); ++i) forward[i] = util::fnv1a(archives[i]);
  for (std::size_t i = archives.size(); i-- > 0;) reverse[i] = util::fnv1a(archives[i]);
  util::ThreadPool pool(4);
  pool.parallel_for(archives.size(),
                    [&](std::size_t i) { parallel[i] = util::fnv1a(archives[i]); });

  EXPECT_EQ(forward, reverse);
  EXPECT_EQ(forward, parallel);

  // Distinct components produce distinct digests (no accidental aliasing
  // that would let one component's snapshot answer for another).
  std::set<std::uint64_t> unique(forward.begin(), forward.end());
  EXPECT_EQ(unique.size(), forward.size());
}

/// Every FNV-1a step (xor a byte, multiply by an odd prime) is a bijection
/// on the 64-bit state, so for equal-length inputs a single-byte change
/// *always* changes the digest — exhaustively checked at every offset. A
/// stale fragment or snapshot can therefore never be served for a .tjar
/// that was mutated in place.
TEST(DigestProperty, AnySingleByteMutationChangesTheDigest) {
  std::vector<std::byte> bytes = jar::write_archive(corpus::build_component("BeanShell1").jar);
  ASSERT_FALSE(bytes.empty());
  std::uint64_t original = util::fnv1a(bytes);
  for (std::size_t offset = 0; offset < bytes.size(); ++offset) {
    std::byte saved = bytes[offset];
    bytes[offset] ^= std::byte{0x01};
    EXPECT_NE(util::fnv1a(bytes), original) << "digest collision at offset " << offset;
    bytes[offset] = saved;
  }
}

TEST(DigestProperty, HexRenderingIsFixedWidthAndDistinct) {
  EXPECT_EQ(util::digest_hex(0), "0000000000000000");
  EXPECT_EQ(util::digest_hex(0xDEADBEEFCAFEF00DULL), "deadbeefcafef00d");
  EXPECT_NE(util::digest_hex(util::fnv1a("a")), util::digest_hex(util::fnv1a("b")));
}

INSTANTIATE_TEST_SUITE_P(AllComponents, ComponentProperty,
                         ::testing::ValuesIn(corpus::component_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return ComponentProperty::sanitize(info.param);
                         });

}  // namespace
}  // namespace tabby
