// Tests for the `tabby` CLI: argument handling, every subcommand, and the
// full disk round trip (gen -> analyze -> find -> query, including the
// persistent graph-store path).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "cli/cli.hpp"
#include "support/json_lite.hpp"

namespace tabby::cli {
namespace {

namespace fs = std::filesystem;

struct CliRun {
  int code = 0;
  std::string out;
  std::string err;
};

CliRun run(std::vector<std::string> args) {
  std::ostringstream out, err;
  CliRun result;
  result.code = run_cli(args, out, err);
  result.out = out.str();
  result.err = err.str();
  return result;
}

class CliFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / ("tabby_cli_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& file) const { return (dir_ / file).string(); }
  fs::path dir_;
};

TEST(Cli, NoArgsShowsUsage) {
  CliRun r = run({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("usage"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  CliRun r = run({"frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, UnknownFlagFails) {
  CliRun r = run({"list", "--bogus"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown flag"), std::string::npos);
}

TEST(Cli, MissingFlagValueFails) {
  CliRun r = run({"gen", "C3P0", "--out"});
  EXPECT_EQ(r.code, 2);
}

TEST(Cli, ListShowsComponentsAndScenes) {
  CliRun r = run({"list"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("commons-collections(3.2.1)"), std::string::npos);
  EXPECT_NE(r.out.find("Spring"), std::string::npos);
}

TEST_F(CliFixture, GenUnknownNameFails) {
  CliRun r = run({"gen", "NoSuchThing", "--out", dir_.string()});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown component or scene"), std::string::npos);
}

TEST_F(CliFixture, GenAnalyzeFindQueryRoundTrip) {
  // gen
  CliRun gen = run({"gen", "BeanShell1", "--out", dir_.string()});
  ASSERT_EQ(gen.code, 0) << gen.err;
  ASSERT_TRUE(fs::exists(path("BeanShell1.tjar")));
  ASSERT_TRUE(fs::exists(path("jdk-base.tjar")));

  // analyze with a persistent store
  CliRun analyze =
      run({"analyze", path("BeanShell1.tjar"), "--store", path("cpg.tgdb")});
  ASSERT_EQ(analyze.code, 0) << analyze.err;
  EXPECT_NE(analyze.out.find("sinks:"), std::string::npos);
  EXPECT_TRUE(fs::exists(path("cpg.tgdb")));

  // find with auto-verification: BeanShell1 = 1 real + 2 guarded fakes.
  CliRun find = run({"find", path("BeanShell1.tjar"), "--verify"});
  ASSERT_EQ(find.code, 0) << find.err;
  EXPECT_NE(find.out.find("3 gadget chain(s)"), std::string::npos);
  EXPECT_NE(find.out.find("1/3 chains confirmed effective"), std::string::npos);

  // query against the stored graph
  CliRun query = run({"query", "--store", path("cpg.tgdb"),
                      "MATCH (m:Method {IS_SINK: true}) RETURN m.SIGNATURE"});
  ASSERT_EQ(query.code, 0) << query.err;
  EXPECT_NE(query.out.find("row(s)"), std::string::npos);

  // query building the CPG from jars directly
  CliRun query2 = run({"query", path("BeanShell1.tjar"),
                       "MATCH (m:Method {IS_SOURCE: true}) RETURN m.SIGNATURE LIMIT 3"});
  ASSERT_EQ(query2.code, 0) << query2.err;
  EXPECT_NE(query2.out.find("readObject"), std::string::npos);
}

TEST_F(CliFixture, FindDepthFlagLimitsSearch) {
  CliRun gen = run({"gen", "BeanShell1", "--out", dir_.string()});
  ASSERT_EQ(gen.code, 0);
  CliRun shallow = run({"find", path("BeanShell1.tjar"), "--depth", "1"});
  ASSERT_EQ(shallow.code, 0);
  EXPECT_NE(shallow.out.find("0 gadget chain(s)"), std::string::npos);
}

TEST_F(CliFixture, AnalyzeMissingJarFails) {
  CliRun r = run({"analyze", path("ghost.tjar")});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("error"), std::string::npos);
}

TEST_F(CliFixture, QueryParseErrorReported) {
  CliRun gen = run({"gen", "BeanShell1", "--out", dir_.string()});
  ASSERT_EQ(gen.code, 0);
  CliRun r = run({"query", path("BeanShell1.tjar"), "NONSENSE"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("query error"), std::string::npos);
}

TEST_F(CliFixture, BadDepthRejected) {
  CliRun r = run({"find", "x.tjar", "--depth", "zero"});
  EXPECT_EQ(r.code, 2);
}

TEST(Cli, PartialIntegerTokenRejectedAndNamed) {
  // "12abc" must not silently truncate to 12; the error names the token.
  CliRun r = run({"find", "x.tjar", "--depth", "12abc"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--depth"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("12abc"), std::string::npos) << r.err;
}

TEST(Cli, NonPositiveCountsRejected) {
  CliRun depth = run({"find", "x.tjar", "--depth", "0"});
  EXPECT_EQ(depth.code, 2);
  EXPECT_NE(depth.err.find("bad --depth value: 0"), std::string::npos) << depth.err;
  CliRun jobs = run({"analyze", "x.tjar", "--jobs", "-2"});
  EXPECT_EQ(jobs.code, 2);
  EXPECT_NE(jobs.err.find("bad --jobs value: -2"), std::string::npos) << jobs.err;
}

TEST(Cli, MissingTraceValueFails) {
  CliRun r = run({"list", "--trace"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("missing value for --trace"), std::string::npos) << r.err;
}

TEST(Cli, CacheFlagMissingValueFails) {
  CliRun r = run({"analyze", "x.tjar", "--cache"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("missing value for --cache"), std::string::npos);
}

TEST_F(CliFixture, CacheDirCreationFailureReported) {
  // A path below a regular file cannot be created as a directory.
  { std::ofstream block(path("blocker")); }
  CliRun r = run({"gen", "BeanShell1", "--out", dir_.string()});
  ASSERT_EQ(r.code, 0);
  CliRun bad = run({"analyze", path("BeanShell1.tjar"), "--cache", path("blocker/cache")});
  EXPECT_EQ(bad.code, 1);
  EXPECT_NE(bad.err.find("cache"), std::string::npos) << bad.err;
}

TEST_F(CliFixture, CacheStatsLineReportsMissThenHit) {
  CliRun gen = run({"gen", "BeanShell1", "--out", dir_.string()});
  ASSERT_EQ(gen.code, 0) << gen.err;

  CliRun cold = run({"analyze", path("BeanShell1.tjar"), "--cache", path("cache")});
  ASSERT_EQ(cold.code, 0) << cold.err;
  EXPECT_NE(cold.out.find("cache: snapshot miss"), std::string::npos) << cold.out;
  EXPECT_NE(cold.out.find("fragments 0/1 hit"), std::string::npos) << cold.out;

  CliRun warm = run({"analyze", path("BeanShell1.tjar"), "--cache", path("cache")});
  ASSERT_EQ(warm.code, 0) << warm.err;
  EXPECT_NE(warm.out.find("cache: snapshot hit"), std::string::npos) << warm.out;
  // Warm stats are the cold run's stats, byte for byte.
  EXPECT_EQ(cold.out.substr(cold.out.find("classes:")), warm.out.substr(warm.out.find("classes:")));
}

TEST_F(CliFixture, CachedAnalyzeStoreQueryRoundTrip) {
  CliRun gen = run({"gen", "BeanShell1", "--out", dir_.string()});
  ASSERT_EQ(gen.code, 0) << gen.err;

  // Cold analyze populates the cache and writes a store.
  CliRun cold = run({"analyze", path("BeanShell1.tjar"), "--cache", path("cache"), "--store",
                     path("cold.tgdb")});
  ASSERT_EQ(cold.code, 0) << cold.err;

  // Warm analyze writes a byte-identical store.
  CliRun warm = run({"analyze", path("BeanShell1.tjar"), "--cache", path("cache"), "--store",
                     path("warm.tgdb")});
  ASSERT_EQ(warm.code, 0) << warm.err;
  auto slurp = [](const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };
  EXPECT_EQ(slurp(path("cold.tgdb")), slurp(path("warm.tgdb")));

  // Both stores answer queries; the warm-cached direct query matches too.
  CliRun via_store = run({"query", "--store", path("warm.tgdb"),
                          "MATCH (m:Method {IS_SINK: true}) RETURN m.SIGNATURE"});
  ASSERT_EQ(via_store.code, 0) << via_store.err;
  CliRun via_cache = run({"query", path("BeanShell1.tjar"), "--cache", path("cache"),
                          "MATCH (m:Method {IS_SINK: true}) RETURN m.SIGNATURE"});
  ASSERT_EQ(via_cache.code, 0) << via_cache.err;
  EXPECT_NE(via_cache.out.find("cache: snapshot hit"), std::string::npos) << via_cache.out;
  // Identical rows once the cache line is stripped.
  std::string cached_rows = via_cache.out.substr(via_cache.out.find('\n') + 1);
  EXPECT_EQ(via_store.out, cached_rows);

  // find --verify on a warm cache still auto-verifies (needs the program).
  CliRun verify = run({"find", path("BeanShell1.tjar"), "--cache", path("cache"), "--verify"});
  ASSERT_EQ(verify.code, 0) << verify.err;
  EXPECT_NE(verify.out.find("cache: snapshot hit"), std::string::npos) << verify.out;
  EXPECT_NE(verify.out.find("1/3 chains confirmed effective"), std::string::npos) << verify.out;
}

std::string slurp_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST_F(CliFixture, TraceFileIsWellFormedChromeJsonWithNestedSpans) {
  CliRun gen = run({"gen", "BeanShell1", "--out", dir_.string()});
  ASSERT_EQ(gen.code, 0) << gen.err;

  CliRun find = run({"find", path("BeanShell1.tjar"), "--jobs", "4", "--trace", path("trace.json")});
  ASSERT_EQ(find.code, 0) << find.err;
  ASSERT_TRUE(fs::exists(path("trace.json")));

  auto doc = testsupport::parse_json(slurp_file(path("trace.json")));
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_array());
  ASSERT_FALSE(doc->array.empty());

  // Collect the complete ("X") events per track and the named tracks.
  std::map<double, std::vector<const testsupport::JsonValue*>> by_tid;
  std::vector<std::string> track_names;
  std::vector<std::string> span_names;
  for (const auto& event : doc->array) {
    ASSERT_TRUE(event.is_object());
    ASSERT_TRUE(event.has("ph"));
    if (event.at("ph").string == "M" && event.at("name").string == "thread_name") {
      track_names.push_back(event.at("args").at("name").string);
    }
    if (event.at("ph").string != "X") continue;
    ASSERT_TRUE(event.has("ts"));
    ASSERT_TRUE(event.has("dur"));
    by_tid[event.at("tid").number].push_back(&event);
    span_names.push_back(event.at("name").string);
  }

  // One track per ThreadPool worker plus the main thread.
  EXPECT_NE(std::find(track_names.begin(), track_names.end(), "main"), track_names.end());
  int workers = 0;
  for (const std::string& name : track_names) {
    if (name.rfind("worker-", 0) == 0) ++workers;
  }
  EXPECT_GE(workers, 4);

  // Every pipeline stage shows up: decode, analysis, CPG phases, finder.
  for (const char* expected : {"pipeline.run", "pipeline.load_program", "jar.decode", "jar.link",
                               "analysis.precompute", "cpg.build", "cpg.pcg", "finder.find_all",
                               "finder.sink", "cli.command"}) {
    EXPECT_NE(std::find(span_names.begin(), span_names.end(), expected), span_names.end())
        << "missing span: " << expected;
  }

  // Per track, spans obey stack discipline: sorted by start, each span either
  // nests inside the enclosing open span or starts after it ended.
  for (const auto& [tid, events] : by_tid) {
    std::vector<std::pair<double, double>> stack;  // (start, end)
    double last_start = -1;
    for (const auto* event : events) {
      double start = event->at("ts").number;
      double end = start + event->at("dur").number;
      EXPECT_GE(start, last_start) << "events not sorted on tid " << tid;
      last_start = start;
      while (!stack.empty() && start >= stack.back().second) stack.pop_back();
      if (!stack.empty()) {
        EXPECT_LE(end, stack.back().second)
            << "span overlaps its parent on tid " << tid << ": " << event->at("name").string;
      }
      stack.emplace_back(start, end);
    }
  }
}

TEST_F(CliFixture, TracingAndMetricsDoNotPerturbOutputs) {
  CliRun gen = run({"gen", "BeanShell1", "--out", dir_.string()});
  ASSERT_EQ(gen.code, 0) << gen.err;

  CliRun plain = run({"analyze", path("BeanShell1.tjar"), "--store", path("plain.tgdb")});
  ASSERT_EQ(plain.code, 0) << plain.err;
  CliRun traced = run({"analyze", path("BeanShell1.tjar"), "--store", path("traced.tgdb"),
                       "--trace", path("trace.json"), "--metrics"});
  ASSERT_EQ(traced.code, 0) << traced.err;

  // stdout and the persistent store are byte-identical; the only differences
  // are the metrics summary on stderr, the trace file on disk, the wall-clock
  // "build:" line, and the store filename the test itself varies.
  auto stable_lines = [](const std::string& text) {
    std::istringstream in(text);
    std::string out, line;
    while (std::getline(in, line)) {
      if (line.rfind("build:", 0) == 0) continue;
      if (line.rfind("graph store written to", 0) == 0) continue;
      out += line + "\n";
    }
    return out;
  };
  EXPECT_EQ(stable_lines(plain.out), stable_lines(traced.out));
  EXPECT_FALSE(stable_lines(plain.out).empty());
  EXPECT_EQ(slurp_file(path("plain.tgdb")), slurp_file(path("traced.tgdb")));
  EXPECT_NE(traced.err.find("metrics: span "), std::string::npos) << traced.err;
  EXPECT_NE(traced.err.find("metrics: counter "), std::string::npos) << traced.err;

  // find output (the chains) is identical too, modulo its own timing line.
  CliRun find_plain = run({"find", path("BeanShell1.tjar")});
  CliRun find_traced = run({"find", path("BeanShell1.tjar"), "--trace", path("trace2.json")});
  ASSERT_EQ(find_plain.code, 0);
  ASSERT_EQ(find_traced.code, 0);
  auto strip_timing = [](const std::string& text) {
    std::size_t cut = text.find(" s search");
    std::size_t comma = text.rfind(", ", cut);
    return text.substr(0, comma) + text.substr(cut + 9);
  };
  EXPECT_EQ(strip_timing(find_plain.out), strip_timing(find_traced.out));
}

TEST_F(CliFixture, MetricsCountersReportCacheTraffic) {
  CliRun gen = run({"gen", "BeanShell1", "--out", dir_.string()});
  ASSERT_EQ(gen.code, 0) << gen.err;

  CliRun cold =
      run({"analyze", path("BeanShell1.tjar"), "--cache", path("cache"), "--metrics"});
  ASSERT_EQ(cold.code, 0) << cold.err;
  EXPECT_NE(cold.err.find("metrics: counter cache.snapshot_misses = 1"), std::string::npos)
      << cold.err;
  EXPECT_NE(cold.err.find("metrics: counter cache.snapshots_published = 1"), std::string::npos)
      << cold.err;

  CliRun warm =
      run({"analyze", path("BeanShell1.tjar"), "--cache", path("cache"), "--metrics"});
  ASSERT_EQ(warm.code, 0) << warm.err;
  EXPECT_NE(warm.err.find("metrics: counter cache.snapshot_hits = 1"), std::string::npos)
      << warm.err;
}

TEST_F(CliFixture, UnwritableTraceFileReported) {
  CliRun r = run({"list", "--trace", (dir_ / "no" / "such" / "dir" / "t.json").string()});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("cannot write trace file"), std::string::npos) << r.err;
}

}  // namespace
}  // namespace tabby::cli
