// Tests for the `tabby` CLI: argument handling, every subcommand, and the
// full disk round trip (gen -> analyze -> find -> query, including the
// persistent graph-store path).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "cli/cli.hpp"

namespace tabby::cli {
namespace {

namespace fs = std::filesystem;

struct CliRun {
  int code = 0;
  std::string out;
  std::string err;
};

CliRun run(std::vector<std::string> args) {
  std::ostringstream out, err;
  CliRun result;
  result.code = run_cli(args, out, err);
  result.out = out.str();
  result.err = err.str();
  return result;
}

class CliFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / ("tabby_cli_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& file) const { return (dir_ / file).string(); }
  fs::path dir_;
};

TEST(Cli, NoArgsShowsUsage) {
  CliRun r = run({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("usage"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  CliRun r = run({"frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, UnknownFlagFails) {
  CliRun r = run({"list", "--bogus"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown flag"), std::string::npos);
}

TEST(Cli, MissingFlagValueFails) {
  CliRun r = run({"gen", "C3P0", "--out"});
  EXPECT_EQ(r.code, 2);
}

TEST(Cli, ListShowsComponentsAndScenes) {
  CliRun r = run({"list"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("commons-collections(3.2.1)"), std::string::npos);
  EXPECT_NE(r.out.find("Spring"), std::string::npos);
}

TEST_F(CliFixture, GenUnknownNameFails) {
  CliRun r = run({"gen", "NoSuchThing", "--out", dir_.string()});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown component or scene"), std::string::npos);
}

TEST_F(CliFixture, GenAnalyzeFindQueryRoundTrip) {
  // gen
  CliRun gen = run({"gen", "BeanShell1", "--out", dir_.string()});
  ASSERT_EQ(gen.code, 0) << gen.err;
  ASSERT_TRUE(fs::exists(path("BeanShell1.tjar")));
  ASSERT_TRUE(fs::exists(path("jdk-base.tjar")));

  // analyze with a persistent store
  CliRun analyze =
      run({"analyze", path("BeanShell1.tjar"), "--store", path("cpg.tgdb")});
  ASSERT_EQ(analyze.code, 0) << analyze.err;
  EXPECT_NE(analyze.out.find("sinks:"), std::string::npos);
  EXPECT_TRUE(fs::exists(path("cpg.tgdb")));

  // find with auto-verification: BeanShell1 = 1 real + 2 guarded fakes.
  CliRun find = run({"find", path("BeanShell1.tjar"), "--verify"});
  ASSERT_EQ(find.code, 0) << find.err;
  EXPECT_NE(find.out.find("3 gadget chain(s)"), std::string::npos);
  EXPECT_NE(find.out.find("1/3 chains confirmed effective"), std::string::npos);

  // query against the stored graph
  CliRun query = run({"query", "--store", path("cpg.tgdb"),
                      "MATCH (m:Method {IS_SINK: true}) RETURN m.SIGNATURE"});
  ASSERT_EQ(query.code, 0) << query.err;
  EXPECT_NE(query.out.find("row(s)"), std::string::npos);

  // query building the CPG from jars directly
  CliRun query2 = run({"query", path("BeanShell1.tjar"),
                       "MATCH (m:Method {IS_SOURCE: true}) RETURN m.SIGNATURE LIMIT 3"});
  ASSERT_EQ(query2.code, 0) << query2.err;
  EXPECT_NE(query2.out.find("readObject"), std::string::npos);
}

TEST_F(CliFixture, FindDepthFlagLimitsSearch) {
  CliRun gen = run({"gen", "BeanShell1", "--out", dir_.string()});
  ASSERT_EQ(gen.code, 0);
  CliRun shallow = run({"find", path("BeanShell1.tjar"), "--depth", "1"});
  ASSERT_EQ(shallow.code, 0);
  EXPECT_NE(shallow.out.find("0 gadget chain(s)"), std::string::npos);
}

TEST_F(CliFixture, AnalyzeMissingJarFails) {
  CliRun r = run({"analyze", path("ghost.tjar")});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("error"), std::string::npos);
}

TEST_F(CliFixture, QueryParseErrorReported) {
  CliRun gen = run({"gen", "BeanShell1", "--out", dir_.string()});
  ASSERT_EQ(gen.code, 0);
  CliRun r = run({"query", path("BeanShell1.tjar"), "NONSENSE"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("query error"), std::string::npos);
}

TEST_F(CliFixture, BadDepthRejected) {
  CliRun r = run({"find", "x.tjar", "--depth", "zero"});
  EXPECT_EQ(r.code, 2);
}

TEST(Cli, CacheFlagMissingValueFails) {
  CliRun r = run({"analyze", "x.tjar", "--cache"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("missing value for --cache"), std::string::npos);
}

TEST_F(CliFixture, CacheDirCreationFailureReported) {
  // A path below a regular file cannot be created as a directory.
  { std::ofstream block(path("blocker")); }
  CliRun r = run({"gen", "BeanShell1", "--out", dir_.string()});
  ASSERT_EQ(r.code, 0);
  CliRun bad = run({"analyze", path("BeanShell1.tjar"), "--cache", path("blocker/cache")});
  EXPECT_EQ(bad.code, 1);
  EXPECT_NE(bad.err.find("cache"), std::string::npos) << bad.err;
}

TEST_F(CliFixture, CacheStatsLineReportsMissThenHit) {
  CliRun gen = run({"gen", "BeanShell1", "--out", dir_.string()});
  ASSERT_EQ(gen.code, 0) << gen.err;

  CliRun cold = run({"analyze", path("BeanShell1.tjar"), "--cache", path("cache")});
  ASSERT_EQ(cold.code, 0) << cold.err;
  EXPECT_NE(cold.out.find("cache: snapshot miss"), std::string::npos) << cold.out;
  EXPECT_NE(cold.out.find("fragments 0/1 hit"), std::string::npos) << cold.out;

  CliRun warm = run({"analyze", path("BeanShell1.tjar"), "--cache", path("cache")});
  ASSERT_EQ(warm.code, 0) << warm.err;
  EXPECT_NE(warm.out.find("cache: snapshot hit"), std::string::npos) << warm.out;
  // Warm stats are the cold run's stats, byte for byte.
  EXPECT_EQ(cold.out.substr(cold.out.find("classes:")), warm.out.substr(warm.out.find("classes:")));
}

TEST_F(CliFixture, CachedAnalyzeStoreQueryRoundTrip) {
  CliRun gen = run({"gen", "BeanShell1", "--out", dir_.string()});
  ASSERT_EQ(gen.code, 0) << gen.err;

  // Cold analyze populates the cache and writes a store.
  CliRun cold = run({"analyze", path("BeanShell1.tjar"), "--cache", path("cache"), "--store",
                     path("cold.tgdb")});
  ASSERT_EQ(cold.code, 0) << cold.err;

  // Warm analyze writes a byte-identical store.
  CliRun warm = run({"analyze", path("BeanShell1.tjar"), "--cache", path("cache"), "--store",
                     path("warm.tgdb")});
  ASSERT_EQ(warm.code, 0) << warm.err;
  auto slurp = [](const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };
  EXPECT_EQ(slurp(path("cold.tgdb")), slurp(path("warm.tgdb")));

  // Both stores answer queries; the warm-cached direct query matches too.
  CliRun via_store = run({"query", "--store", path("warm.tgdb"),
                          "MATCH (m:Method {IS_SINK: true}) RETURN m.SIGNATURE"});
  ASSERT_EQ(via_store.code, 0) << via_store.err;
  CliRun via_cache = run({"query", path("BeanShell1.tjar"), "--cache", path("cache"),
                          "MATCH (m:Method {IS_SINK: true}) RETURN m.SIGNATURE"});
  ASSERT_EQ(via_cache.code, 0) << via_cache.err;
  EXPECT_NE(via_cache.out.find("cache: snapshot hit"), std::string::npos) << via_cache.out;
  // Identical rows once the cache line is stripped.
  std::string cached_rows = via_cache.out.substr(via_cache.out.find('\n') + 1);
  EXPECT_EQ(via_store.out, cached_rows);

  // find --verify on a warm cache still auto-verifies (needs the program).
  CliRun verify = run({"find", path("BeanShell1.tjar"), "--cache", path("cache"), "--verify"});
  ASSERT_EQ(verify.code, 0) << verify.err;
  EXPECT_NE(verify.out.find("cache: snapshot hit"), std::string::npos) << verify.out;
  EXPECT_NE(verify.out.find("1/3 chains confirmed effective"), std::string::npos) << verify.out;
}

}  // namespace
}  // namespace tabby::cli
