// Unit tests for the JIR module: types, statements, the builder API, the
// textual printer/parser round trip, hierarchy queries and validation.
#include <gtest/gtest.h>

#include "jir/builder.hpp"
#include "jir/hierarchy.hpp"
#include "jir/model.hpp"
#include "jir/parser.hpp"
#include "jir/printer.hpp"
#include "jir/validate.hpp"

namespace tabby::jir {
namespace {

TEST(Type, ParseAndPrint) {
  EXPECT_EQ(parse_type("int").name, "int");
  EXPECT_EQ(parse_type("int").dims, 0);
  Type arr = parse_type("java.lang.String[][]");
  EXPECT_EQ(arr.name, "java.lang.String");
  EXPECT_EQ(arr.dims, 2);
  EXPECT_EQ(arr.to_string(), "java.lang.String[][]");
  EXPECT_EQ(arr.element().dims, 1);
}

TEST(Type, Classification) {
  EXPECT_TRUE(parse_type("void").is_void());
  EXPECT_TRUE(parse_type("int").is_primitive());
  EXPECT_FALSE(parse_type("int[]").is_primitive());
  EXPECT_TRUE(parse_type("int[]").is_array());
  EXPECT_TRUE(parse_type("java.lang.Object").is_reference());
  EXPECT_FALSE(parse_type("double").is_reference());
}

TEST(Stmt, RenderForms) {
  EXPECT_EQ(to_string(Stmt{AssignStmt{"a", "b"}}), "a = b");
  EXPECT_EQ(to_string(Stmt{ConstStmt{"a", Const::of(std::int64_t{42})}}), "a = 42");
  EXPECT_EQ(to_string(Stmt{ConstStmt{"a", Const::of("hi")}}), "a = \"hi\"");
  EXPECT_EQ(to_string(Stmt{ConstStmt{"a", Const::null()}}), "a = null");
  EXPECT_EQ(to_string(Stmt{NewStmt{"a", parse_type("x.T")}}), "a = new x.T");
  EXPECT_EQ(to_string(Stmt{FieldStoreStmt{"a", "f", "b"}}), "a.f = b");
  EXPECT_EQ(to_string(Stmt{FieldLoadStmt{"a", "b", "f"}}), "a = b.f");
  EXPECT_EQ(to_string(Stmt{StaticStoreStmt{"x.T", "f", "b"}}), "staticput x.T.f = b");
  EXPECT_EQ(to_string(Stmt{StaticLoadStmt{"a", "x.T", "f"}}), "a = staticget x.T.f");
  EXPECT_EQ(to_string(Stmt{ArrayStoreStmt{"a", "i", "b"}}), "a[i] = b");
  EXPECT_EQ(to_string(Stmt{ArrayLoadStmt{"a", "b", "i"}}), "a = b[i]");
  EXPECT_EQ(to_string(Stmt{CastStmt{"a", parse_type("x.T"), "b"}}), "a = (x.T) b");
  EXPECT_EQ(to_string(Stmt{ReturnStmt{}}), "return");
  EXPECT_EQ(to_string(Stmt{ReturnStmt{"a"}}), "return a");
  EXPECT_EQ(to_string(Stmt{IfStmt{"a", CmpOp::Ne, "b", "L1"}}), "if a != b goto L1");
  EXPECT_EQ(to_string(Stmt{GotoStmt{"L"}}), "goto L");
  EXPECT_EQ(to_string(Stmt{LabelStmt{"L"}}), "label L");
  EXPECT_EQ(to_string(Stmt{ThrowStmt{"e"}}), "throw e");
  EXPECT_EQ(to_string(Stmt{NopStmt{}}), "nop");
}

TEST(StmtParse, EachFormRoundTrips) {
  const char* cases[] = {
      "a = b",
      "a = 42",
      "a = -7",
      "a = \"hi there\"",
      "a = null",
      "a = new x.T",
      "a.f = b",
      "a = b.f",
      "staticput x.T.f = b",
      "a = staticget x.T.f",
      "a[i] = b",
      "a = b[i]",
      "a = (x.T) b",
      "return",
      "return a",
      "a = virtualinvoke b.<x.T#m/2>(p, q)",
      "staticinvoke <x.T#m/0>()",
      "specialinvoke b.<x.T#<init>/1>(p)",
      "a = interfaceinvoke b.<x.I#m/1>(p)",
      "if a != b goto L1",
      "goto L",
      "label L",
      "throw e",
      "nop",
  };
  for (const char* text : cases) {
    auto stmt = parse_stmt(text);
    ASSERT_TRUE(stmt.ok()) << text << ": " << stmt.error().to_string();
    EXPECT_EQ(to_string(stmt.value()), text);
  }
}

TEST(StmtParse, RejectsMalformed) {
  EXPECT_FALSE(parse_stmt("a = ").ok());
  EXPECT_FALSE(parse_stmt("= b").ok());
  EXPECT_FALSE(parse_stmt("a = virtualinvoke <x.T#m/1>(p)").ok());  // missing receiver
  EXPECT_FALSE(parse_stmt("a = virtualinvoke b.<x.T#m/2>(p)").ok());  // arity mismatch
  EXPECT_FALSE(parse_stmt("if a ~ b goto L").ok());
  EXPECT_FALSE(parse_stmt("staticput noField = b").ok());
}

TEST(Builder, BuildsClassesAndMethods) {
  ProgramBuilder pb;
  pb.with_core_classes();
  auto cls = pb.add_class("demo.Evil");
  cls.serializable();
  cls.field("val", "java.lang.Object");
  cls.method("readObject")
      .param("java.io.ObjectInputStream")
      .returns("void")
      .field_load("v", "@this", "val")
      .invoke_virtual("", "v", "java.lang.Object", "toString", {})
      .ret();
  Program p = pb.build();

  const ClassDecl* evil = p.find_class("demo.Evil");
  ASSERT_NE(evil, nullptr);
  EXPECT_EQ(evil->super, "java.lang.Object");
  ASSERT_EQ(evil->interfaces.size(), 1u);
  EXPECT_EQ(evil->interfaces[0], kSerializableInterface);
  const Method* ro = evil->find_method("readObject", 1);
  ASSERT_NE(ro, nullptr);
  EXPECT_EQ(ro->body.size(), 3u);
}

TEST(Builder, DuplicateClassThrows) {
  ProgramBuilder pb;
  pb.add_class("demo.X");
  pb.add_class("demo.X");
  EXPECT_THROW(pb.build(), std::invalid_argument);
}

TEST(Program, FindAndResolveMethods) {
  ProgramBuilder pb;
  pb.with_core_classes();
  auto base = pb.add_class("demo.Base");
  base.method("greet").returns("void").ret();
  auto derived = pb.add_class("demo.Derived");
  derived.extends("demo.Base");
  Program p = pb.build();

  EXPECT_TRUE(p.find_method("demo.Base", "greet", 0).has_value());
  EXPECT_FALSE(p.find_method("demo.Derived", "greet", 0).has_value());
  auto resolved = p.resolve_method("demo.Derived", "greet", 0);
  ASSERT_TRUE(resolved.has_value());
  EXPECT_EQ(p.class_of(*resolved).name, "demo.Base");
  // Inherited from the root.
  EXPECT_TRUE(p.resolve_method("demo.Derived", "hashCode", 0).has_value());
  EXPECT_FALSE(p.resolve_method("demo.Derived", "nope", 0).has_value());
}

TEST(Program, AllMethodsDeterministicOrder) {
  ProgramBuilder pb;
  auto a = pb.add_class("demo.A");
  a.method("m1").returns("void").ret();
  a.method("m2").returns("void").ret();
  auto b = pb.add_class("demo.B");
  b.method("m3").returns("void").ret();
  Program p = pb.build();
  auto methods = p.all_methods();
  ASSERT_EQ(methods.size(), 3u);
  EXPECT_EQ(p.method(methods[0]).name, "m1");
  EXPECT_EQ(p.method(methods[2]).name, "m3");
}

TEST(Hierarchy, SupertypesAndSubtypes) {
  ProgramBuilder pb;
  pb.with_core_classes();
  pb.add_interface("demo.I");
  auto mid = pb.add_class("demo.Mid");
  mid.implements("demo.I");
  auto leaf = pb.add_class("demo.Leaf");
  leaf.extends("demo.Mid");
  Program p = pb.build();
  Hierarchy h(p);

  auto supers = h.all_supertypes("demo.Leaf");
  EXPECT_NE(std::find(supers.begin(), supers.end(), "demo.Mid"), supers.end());
  EXPECT_NE(std::find(supers.begin(), supers.end(), "demo.I"), supers.end());
  EXPECT_NE(std::find(supers.begin(), supers.end(), std::string(kObjectClass)), supers.end());

  auto subs = h.all_subtypes("demo.I");
  EXPECT_EQ(subs.size(), 2u);

  EXPECT_TRUE(h.is_subtype_of("demo.Leaf", "demo.I"));
  EXPECT_TRUE(h.is_subtype_of("demo.Leaf", kObjectClass));
  EXPECT_FALSE(h.is_subtype_of("demo.Mid", "demo.Leaf"));
}

TEST(Hierarchy, SerializableDetection) {
  ProgramBuilder pb;
  pb.with_core_classes();
  auto ser = pb.add_class("demo.Ser");
  ser.serializable();
  auto child = pb.add_class("demo.Child");
  child.extends("demo.Ser");
  auto plain = pb.add_class("demo.Plain");
  plain.method("m").returns("void").ret();
  Program p = pb.build();
  Hierarchy h(p);
  EXPECT_TRUE(h.is_serializable("demo.Ser"));
  EXPECT_TRUE(h.is_serializable("demo.Child"));  // inherited
  EXPECT_FALSE(h.is_serializable("demo.Plain"));
}

TEST(Hierarchy, DispatchPrefersOverride) {
  ProgramBuilder pb;
  pb.with_core_classes();
  auto base = pb.add_class("demo.Base");
  base.method("run").returns("void").ret();
  auto derived = pb.add_class("demo.Derived");
  derived.extends("demo.Base");
  derived.method("run").returns("void").ret();
  Program p = pb.build();
  Hierarchy h(p);

  auto target = h.dispatch("demo.Derived", "run", 0);
  ASSERT_TRUE(target.has_value());
  EXPECT_EQ(p.class_of(*target).name, "demo.Derived");
  auto base_target = h.dispatch("demo.Base", "run", 0);
  ASSERT_TRUE(base_target.has_value());
  EXPECT_EQ(p.class_of(*base_target).name, "demo.Base");
}

TEST(Hierarchy, ConcreteImplementations) {
  ProgramBuilder pb;
  pb.with_core_classes();
  pb.add_interface("demo.I");
  auto abs = pb.add_class("demo.Abs");
  abs.implements("demo.I").set_abstract();
  auto impl = pb.add_class("demo.Impl");
  impl.extends("demo.Abs");
  Program p = pb.build();
  Hierarchy h(p);
  auto concrete = h.concrete_implementations("demo.I");
  ASSERT_EQ(concrete.size(), 1u);
  EXPECT_EQ(concrete[0], "demo.Impl");
}

TEST(PrinterParser, ProgramRoundTrip) {
  ProgramBuilder pb;
  pb.with_core_classes();
  auto cls = pb.add_class("demo.RoundTrip");
  cls.serializable();
  cls.field("items", "java.lang.Object[]");
  cls.field("count", "int", /*is_static=*/true);
  auto m = cls.method("process");
  m.param("java.lang.Object").param("int").returns("java.lang.Object");
  m.const_str("s", "cmd value");
  m.new_object("o", "demo.RoundTrip");
  m.field_store("o", "items", "@p1");
  m.field_load("x", "o", "items");
  m.array_load("y", "x", "@p2");
  m.cast("z", "java.lang.String", "y");
  m.if_cmp("z", CmpOp::Eq, "s", "skip");
  m.invoke_static("r", "demo.RoundTrip", "helper", {"z"});
  m.mark("skip");
  m.static_store("demo.RoundTrip", "count", "@p2");
  m.ret("y");
  cls.method("helper").param("java.lang.String").returns("java.lang.Object").set_static().ret("@p1");
  cls.method("abstractish").returns("void").set_abstract();
  Program original = pb.build();

  std::string text = to_text(original);
  auto reparsed = parse_program(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().to_string() << "\n" << text;
  EXPECT_EQ(to_text(reparsed.value()), text);
  EXPECT_EQ(reparsed.value().class_count(), original.class_count());
  EXPECT_EQ(reparsed.value().method_count(), original.method_count());
}

TEST(Parser, ParsesInterfaceExtends) {
  auto p = parse_program(R"(
    interface demo.A { }
    interface demo.B extends demo.A {
      abstract method lookup(java.lang.String) : java.lang.Object;
    }
  )");
  ASSERT_TRUE(p.ok()) << p.error().to_string();
  const ClassDecl* b = p.value().find_class("demo.B");
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b->is_interface);
  ASSERT_EQ(b->interfaces.size(), 1u);
  EXPECT_EQ(b->interfaces[0], "demo.A");
  ASSERT_EQ(b->methods.size(), 1u);
  EXPECT_FALSE(b->methods[0].has_body());
}

TEST(Parser, CommentsAreIgnored) {
  auto p = parse_program(R"(
    // a leading comment
    class demo.C {  // trailing comment
      method m() : void {
        return;  // comment after stmt
      }
    }
  )");
  ASSERT_TRUE(p.ok()) << p.error().to_string();
  EXPECT_EQ(p.value().class_count(), 1u);
}

TEST(Parser, ErrorsCarryLocation) {
  auto p = parse_program("class demo.X {\n  method broken( : void { }\n}");
  ASSERT_FALSE(p.ok());
  EXPECT_GT(p.error().location, 0u);
}

TEST(Parser, DuplicateClassRejected) {
  auto p = parse_program("class demo.X { }\nclass demo.X { }");
  ASSERT_FALSE(p.ok());
}

TEST(Validate, CleanProgramHasNoIssues) {
  ProgramBuilder pb;
  pb.with_core_classes();
  auto cls = pb.add_class("demo.Ok");
  cls.method("m").param("int").returns("int").assign("x", "@p1").ret("x");
  Program p = pb.build();
  EXPECT_TRUE(validate(p).empty());
}

TEST(Validate, DetectsUndefinedVariable) {
  ProgramBuilder pb;
  auto cls = pb.add_class("demo.Bad");
  cls.method("m").returns("void").assign("x", "ghost").ret();
  Program p = pb.build();
  auto issues = validate(p);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].message.find("ghost"), std::string::npos);
}

TEST(Validate, DetectsBadLabelAndParamRange) {
  ProgramBuilder pb;
  auto cls = pb.add_class("demo.Bad");
  cls.method("m").param("int").returns("void").jump("nowhere").ret();
  cls.method("n").returns("void").assign("x", "@p3").ret();
  Program p = pb.build();
  auto issues = validate(p);
  EXPECT_EQ(issues.size(), 2u);
}

TEST(Validate, DetectsThisInStatic) {
  ProgramBuilder pb;
  auto cls = pb.add_class("demo.Bad");
  cls.method("m").set_static().returns("void").assign("x", "@this").ret();
  Program p = pb.build();
  EXPECT_FALSE(validate(p).empty());
}

TEST(Validate, DetectsArgCountMismatch) {
  ProgramBuilder pb;
  auto cls = pb.add_class("demo.Bad");
  auto m = cls.method("m").returns("void");
  m.stmt(InvokeStmt{"", InvokeKind::Static, MethodRef{"demo.Bad", "x", 2}, "", {"@this"}});
  m.ret();
  Program p = pb.build();
  EXPECT_FALSE(validate(p).empty());
}

TEST(Validate, PhantomClassesToleratedByDefault) {
  ProgramBuilder pb;
  auto cls = pb.add_class("demo.UsesPhantom");
  cls.method("m").returns("void").new_object("x", "ghost.Class").ret();
  Program p = pb.build();
  EXPECT_TRUE(validate(p, /*allow_phantom_classes=*/true).empty());
  EXPECT_FALSE(validate(p, /*allow_phantom_classes=*/false).empty());
}

}  // namespace
}  // namespace tabby::jir
