// Tests for the Cypher-subset query language: lexing/parsing errors, node
// and relationship patterns, variable-length hops, WHERE predicates, RETURN
// projections, LIMIT, path bindings, and gadget-hunting queries over a real
// CPG (the RQ4 workflow).
#include <gtest/gtest.h>

#include "cpg/builder.hpp"
#include "cypher/cypher.hpp"
#include "fixtures.hpp"

namespace tabby::cypher {
namespace {

using graph::GraphDb;
using graph::Value;

/// A small social-ish graph for pattern tests.
GraphDb sample_graph() {
  GraphDb db;
  auto person = [&](const std::string& name, std::int64_t age) {
    return db.add_node("Person", {{"NAME", Value{name}}, {"AGE", Value{age}}});
  };
  auto a = person("alice", 30);
  auto b = person("bob", 25);
  auto c = person("carol", 41);
  auto d = person("dave", 19);
  db.add_edge(a, b, "KNOWS");
  db.add_edge(b, c, "KNOWS");
  db.add_edge(c, d, "KNOWS");
  db.add_edge(a, c, "WORKS_WITH");
  db.create_index("Person", "NAME");
  return db;
}

TEST(Cypher, SingleNodeByProperty) {
  GraphDb db = sample_graph();
  auto result = run_query(db, "MATCH (p:Person {NAME: \"alice\"}) RETURN p.AGE");
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  ASSERT_EQ(result.value().rows.size(), 1u);
  EXPECT_TRUE(graph::value_equals(result.value().rows[0][0].scalar, Value{std::int64_t{30}}));
}

TEST(Cypher, LabelScanWithoutProps) {
  GraphDb db = sample_graph();
  auto result = run_query(db, "MATCH (p:Person) RETURN p");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows.size(), 4u);
}

TEST(Cypher, DirectedRelationship) {
  GraphDb db = sample_graph();
  auto result = run_query(db, "MATCH (a {NAME: \"alice\"})-[:KNOWS]->(b) RETURN b.NAME");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().rows.size(), 1u);
  EXPECT_TRUE(graph::value_equals(result.value().rows[0][0].scalar, Value{std::string("bob")}));
}

TEST(Cypher, ReverseDirection) {
  GraphDb db = sample_graph();
  auto result = run_query(db, "MATCH (a {NAME: \"bob\"})<-[:KNOWS]-(b) RETURN b.NAME");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().rows.size(), 1u);
  EXPECT_TRUE(graph::value_equals(result.value().rows[0][0].scalar, Value{std::string("alice")}));
}

TEST(Cypher, UndirectedMatchesBothWays) {
  GraphDb db = sample_graph();
  auto result = run_query(db, "MATCH (a {NAME: \"bob\"})-[:KNOWS]-(b) RETURN b.NAME");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows.size(), 2u);  // alice and carol
}

TEST(Cypher, AnyRelationshipType) {
  GraphDb db = sample_graph();
  auto result = run_query(db, "MATCH (a {NAME: \"alice\"})-[]->(b) RETURN b.NAME");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows.size(), 2u);  // bob (KNOWS), carol (WORKS_WITH)
}

TEST(Cypher, VariableLengthHops) {
  GraphDb db = sample_graph();
  auto result =
      run_query(db, "MATCH (a {NAME: \"alice\"})-[:KNOWS*1..3]->(b) RETURN b.NAME");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows.size(), 3u);  // bob, carol, dave
}

TEST(Cypher, VariableLengthLowerBound) {
  GraphDb db = sample_graph();
  auto result =
      run_query(db, "MATCH (a {NAME: \"alice\"})-[:KNOWS*2..3]->(b) RETURN b.NAME");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows.size(), 2u);  // carol, dave
}

TEST(Cypher, FixedLengthStar) {
  GraphDb db = sample_graph();
  auto result = run_query(db, "MATCH (a {NAME: \"alice\"})-[:KNOWS*2]->(b) RETURN b.NAME");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().rows.size(), 1u);
  EXPECT_TRUE(graph::value_equals(result.value().rows[0][0].scalar, Value{std::string("carol")}));
}

TEST(Cypher, MultiHopChainedPatterns) {
  GraphDb db = sample_graph();
  auto result = run_query(
      db, "MATCH (a {NAME: \"alice\"})-[:KNOWS]->(b)-[:KNOWS]->(c) RETURN b.NAME, c.NAME");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().rows.size(), 1u);
  EXPECT_TRUE(graph::value_equals(result.value().rows[0][1].scalar, Value{std::string("carol")}));
}

TEST(Cypher, WhereComparisons) {
  GraphDb db = sample_graph();
  auto result = run_query(db, "MATCH (p:Person) WHERE p.AGE > 26 RETURN p.NAME");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows.size(), 2u);  // alice, carol

  result = run_query(db, "MATCH (p:Person) WHERE p.AGE >= 25 AND p.AGE <= 30 RETURN p.NAME");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows.size(), 2u);  // alice, bob

  result = run_query(db, "MATCH (p:Person) WHERE p.NAME <> \"alice\" RETURN p");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows.size(), 3u);
}

TEST(Cypher, WhereStringPredicates) {
  GraphDb db = sample_graph();
  auto contains = run_query(db, "MATCH (p:Person) WHERE p.NAME CONTAINS \"aro\" RETURN p");
  ASSERT_TRUE(contains.ok());
  EXPECT_EQ(contains.value().rows.size(), 1u);

  auto starts = run_query(db, "MATCH (p:Person) WHERE p.NAME STARTS WITH \"da\" RETURN p");
  ASSERT_TRUE(starts.ok());
  EXPECT_EQ(starts.value().rows.size(), 1u);

  auto ends = run_query(db, "MATCH (p:Person) WHERE p.NAME ENDS WITH \"ob\" RETURN p");
  ASSERT_TRUE(ends.ok());
  EXPECT_EQ(ends.value().rows.size(), 1u);
}

TEST(Cypher, LimitCutsRows) {
  GraphDb db = sample_graph();
  auto result = run_query(db, "MATCH (p:Person) RETURN p LIMIT 2");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows.size(), 2u);
}

TEST(Cypher, PathBinding) {
  GraphDb db = sample_graph();
  auto result =
      run_query(db, "MATCH p = (a {NAME: \"alice\"})-[:KNOWS*1..3]->(b {NAME: \"dave\"}) RETURN p");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().rows.size(), 1u);
  EXPECT_EQ(result.value().rows[0][0].kind, Binding::Kind::Path);
  EXPECT_EQ(result.value().rows[0][0].path.length(), 3u);
  std::string rendered = result.value().to_string(db);
  EXPECT_NE(rendered.find("alice"), std::string::npos);
  EXPECT_NE(rendered.find("dave"), std::string::npos);
}

TEST(Cypher, BooleanLiterals) {
  GraphDb db;
  db.add_node("Flag", {{"ON", Value{true}}});
  db.add_node("Flag", {{"ON", Value{false}}});
  auto result = run_query(db, "MATCH (f:Flag {ON: true}) RETURN f");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows.size(), 1u);
}

TEST(Cypher, EdgeUniquenessPreventsCycleSpam) {
  GraphDb db;
  auto a = db.add_node("N", {{"NAME", Value{std::string("a")}}});
  auto b = db.add_node("N", {{"NAME", Value{std::string("b")}}});
  db.add_edge(a, b, "E");
  db.add_edge(b, a, "E");
  auto result = run_query(db, "MATCH (x {NAME: \"a\"})-[:E*1..6]->(y) RETURN y");
  ASSERT_TRUE(result.ok());
  // Each edge used once per path: a->b and a->b->a only.
  EXPECT_EQ(result.value().rows.size(), 2u);
}

TEST(Cypher, ParseErrorsCarryPosition) {
  GraphDb db = sample_graph();
  for (const char* bad : {
           "MATCH p:Person RETURN p",            // missing parens
           "MATCH (p:Person)",                   // missing RETURN
           "MATCH (p:Person) RETURN",            // missing item
           "MATCH (p:Person RETURN p",           // unclosed node
           "MATCH (a)-[:KNOWS]->(b RETURN a",    // unclosed node 2
           "MATCH (p) WHERE p.AGE ~ 3 RETURN p", // bad operator
           "MATCH (p) RETURN p LIMIT x",         // bad limit
           "FETCH (p) RETURN p",                 // wrong verb
       }) {
    auto result = run_query(db, bad);
    EXPECT_FALSE(result.ok()) << bad;
  }
}

TEST(Cypher, KeywordsAreCaseInsensitive) {
  GraphDb db = sample_graph();
  auto result = run_query(db, "match (p:Person {NAME: 'alice'}) return p.AGE limit 1");
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_EQ(result.value().rows.size(), 1u);
}

// --- RQ4: gadget hunting over a real CPG -------------------------------------

TEST(CypherOnCpg, FindSinksByQuery) {
  cpg::Cpg cpg = cpg::build_cpg(testing::urldns_program());
  auto result = run_query(cpg.db, "MATCH (m:Method {IS_SINK: true}) RETURN m.SIGNATURE");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().rows.size(), 1u);
  EXPECT_TRUE(graph::value_equals(result.value().rows[0][0].scalar,
                                  Value{std::string("java.net.InetAddress#getByName/1")}));
}

TEST(CypherOnCpg, BackwardReachabilityFromSink) {
  cpg::Cpg cpg = cpg::build_cpg(testing::urldns_program());
  // Callers within 2 CALL hops of the sink.
  auto result = run_query(cpg.db,
                          "MATCH (m:Method)-[:CALL*1..2]->(s:Method {IS_SINK: true}) "
                          "RETURN m.SIGNATURE");
  ASSERT_TRUE(result.ok());
  std::vector<std::string> sigs;
  for (const auto& row : result.value().rows) {
    sigs.push_back(std::get<std::string>(row[0].scalar));
  }
  EXPECT_NE(std::find(sigs.begin(), sigs.end(),
                      "java.net.URLStreamHandler#getHostAddress/1"),
            sigs.end());
  EXPECT_NE(std::find(sigs.begin(), sigs.end(), "java.net.URLStreamHandler#hashCode/1"),
            sigs.end());
}

TEST(CypherOnCpg, ClassHierarchyQuery) {
  cpg::Cpg cpg = cpg::build_cpg(testing::urldns_program());
  auto result = run_query(cpg.db,
                          "MATCH (c:Class)-[:INTERFACE]->(i:Class {NAME: "
                          "\"java.io.Serializable\"}) RETURN c.NAME");
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result.value().rows.size(), 3u);  // HashMap, URL, EnumMap, String...
}

TEST(CypherOnCpg, SourceMethodsOfSerializableClasses) {
  cpg::Cpg cpg = cpg::build_cpg(testing::urldns_program());
  auto result = run_query(cpg.db,
                          "MATCH (c:Class {IS_SERIALIZABLE: true})-[:HAS]->"
                          "(m:Method {IS_SOURCE: true}) RETURN c.NAME, m.NAME");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().rows.size(), 1u);
  EXPECT_TRUE(graph::value_equals(result.value().rows[0][0].scalar,
                                  Value{std::string("java.util.HashMap")}));
}

}  // namespace
}  // namespace tabby::cypher
