// Tests for the public pipeline facade (src/pipeline): structured errors,
// cold builds, cache warm/cold equivalence and the in-memory overload — the
// library-level contract the CLI and the examples are thin callers of.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "corpus/components.hpp"
#include "graph/serialize.hpp"
#include "jar/archive.hpp"
#include "pipeline/pipeline.hpp"

namespace tabby::pipeline {
namespace {

namespace fs = std::filesystem;

class PipelineFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / ("tabby_pipeline_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
    corpus::Component component = corpus::build_component("BeanShell1");
    jar_path_ = (dir_ / "component.tjar").string();
    ASSERT_TRUE(jar::write_archive_file(component.jar, jar_path_).ok());
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& file) const { return (dir_ / file).string(); }
  fs::path dir_;
  std::string jar_path_;
};

TEST(Pipeline, LoadProgramReportsTheOffendingPath) {
  auto result = load_program({"/no/such/archive.tjar"}, /*with_jdk=*/true);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("/no/such/archive.tjar"), std::string::npos)
      << result.error().to_string();
}

TEST(Pipeline, RunReportsTheOffendingPathWithAndWithoutCache) {
  Options options;
  auto cold = run({"/no/such/archive.tjar"}, options);
  ASSERT_FALSE(cold.ok());
  EXPECT_NE(cold.error().message.find("/no/such/archive.tjar"), std::string::npos);

  options.cache_dir = (fs::temp_directory_path() / "tabby_pipeline_test_cache_err").string();
  auto cached = run({"/no/such/archive.tjar"}, options);
  ASSERT_FALSE(cached.ok());
  EXPECT_NE(cached.error().message.find("/no/such/archive.tjar"), std::string::npos);
  fs::remove_all(options.cache_dir);
}

TEST_F(PipelineFixture, LoadProgramLinksTheClasspath) {
  auto program = load_program({jar_path_}, /*with_jdk=*/true);
  ASSERT_TRUE(program.ok()) << program.error().to_string();
  EXPECT_GT(program.value().class_count(), 0u);
}

TEST_F(PipelineFixture, ColdRunBuildsACpg) {
  Options options;
  auto result = run({jar_path_}, options);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  const Outcome& outcome = result.value();
  EXPECT_FALSE(outcome.warm);
  EXPECT_GT(outcome.stats.class_nodes, 0u);
  EXPECT_GT(outcome.stats.sink_methods, 0u);
  EXPECT_TRUE(outcome.cache_line.empty());
  EXPECT_TRUE(outcome.graph_bytes.empty());  // not requested
  EXPECT_FALSE(outcome.program.has_value());
}

TEST_F(PipelineFixture, GraphBytesAreTheExactStoreSerialization) {
  Options options;
  options.need_graph_bytes = true;
  auto result = run({jar_path_}, options);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_EQ(result.value().graph_bytes, graph::serialize(result.value().db));
}

TEST_F(PipelineFixture, NeedProgramKeepsTheLinkedProgram) {
  Options options;
  options.need_program = true;
  auto result = run({jar_path_}, options);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  ASSERT_TRUE(result.value().program.has_value());
  EXPECT_GT(result.value().program->class_count(), 0u);
}

TEST_F(PipelineFixture, WarmRunIsByteIdenticalToCold) {
  Options options;
  options.cache_dir = path("cache");

  auto cold = run({jar_path_}, options);
  ASSERT_TRUE(cold.ok()) << cold.error().to_string();
  EXPECT_FALSE(cold.value().warm);
  EXPECT_NE(cold.value().cache_line.find("snapshot miss"), std::string::npos);
  ASSERT_FALSE(cold.value().graph_bytes.empty());  // cache runs embed the store

  auto warm = run({jar_path_}, options);
  ASSERT_TRUE(warm.ok()) << warm.error().to_string();
  EXPECT_TRUE(warm.value().warm);
  EXPECT_NE(warm.value().cache_line.find("snapshot hit"), std::string::npos);
  EXPECT_EQ(cold.value().graph_bytes, warm.value().graph_bytes);
  EXPECT_EQ(cold.value().stats.class_nodes, warm.value().stats.class_nodes);
  EXPECT_EQ(cold.value().stats.relationship_edges, warm.value().stats.relationship_edges);
}

TEST_F(PipelineFixture, WarmRunWithNeedProgramStillLinks) {
  Options options;
  options.cache_dir = path("cache");
  ASSERT_TRUE(run({jar_path_}, options).ok());  // populate

  options.need_program = true;
  auto warm = run({jar_path_}, options);
  ASSERT_TRUE(warm.ok()) << warm.error().to_string();
  EXPECT_TRUE(warm.value().warm);
  ASSERT_TRUE(warm.value().program.has_value());
  EXPECT_GT(warm.value().program->class_count(), 0u);
}

TEST_F(PipelineFixture, InMemoryOverloadMatchesTheArchivePath) {
  auto program = load_program({jar_path_}, /*with_jdk=*/true);
  ASSERT_TRUE(program.ok());

  Options options;
  options.need_graph_bytes = true;
  Outcome from_program = run(program.value(), options);
  auto from_archives = run({jar_path_}, options);
  ASSERT_TRUE(from_archives.ok());
  EXPECT_EQ(from_program.graph_bytes, from_archives.value().graph_bytes);
}

TEST_F(PipelineFixture, MakePoolHonorsTheSerialContract) {
  EXPECT_EQ(make_pool(1), nullptr);
  auto pool = make_pool(3);
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->concurrency(), 3u);
}

TEST_F(PipelineFixture, ParallelRunMatchesSerialByteForByte) {
  Options serial;
  serial.need_graph_bytes = true;
  auto pool = make_pool(4);
  Options parallel = serial;
  parallel.executor = pool.get();

  auto a = run({jar_path_}, serial);
  auto b = run({jar_path_}, parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().graph_bytes, b.value().graph_bytes);
}

}  // namespace
}  // namespace tabby::pipeline
