// Tests for the public pipeline facade (src/pipeline): structured errors,
// cold builds, cache warm/cold equivalence and the in-memory overload — the
// library-level contract the CLI and the examples are thin callers of.
#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <vector>

#include "corpus/components.hpp"
#include "graph/serialize.hpp"
#include "jar/archive.hpp"
#include "pipeline/pipeline.hpp"

namespace tabby::pipeline {
namespace {

namespace fs = std::filesystem;

class PipelineFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / ("tabby_pipeline_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
    corpus::Component component = corpus::build_component("BeanShell1");
    jar_path_ = (dir_ / "component.tjar").string();
    ASSERT_TRUE(jar::write_archive_file(component.jar, jar_path_).ok());
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& file) const { return (dir_ / file).string(); }
  fs::path dir_;
  std::string jar_path_;
};

TEST(Pipeline, LoadProgramReportsTheOffendingPath) {
  auto result = load_program({"/no/such/archive.tjar"}, /*with_jdk=*/true);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("/no/such/archive.tjar"), std::string::npos)
      << result.error().to_string();
}

TEST(Pipeline, RunReportsTheOffendingPathWithAndWithoutCache) {
  Options options;
  auto cold = run({"/no/such/archive.tjar"}, options);
  ASSERT_FALSE(cold.ok());
  EXPECT_NE(cold.error().message.find("/no/such/archive.tjar"), std::string::npos);

  options.cache_dir = (fs::temp_directory_path() / "tabby_pipeline_test_cache_err").string();
  auto cached = run({"/no/such/archive.tjar"}, options);
  ASSERT_FALSE(cached.ok());
  EXPECT_NE(cached.error().message.find("/no/such/archive.tjar"), std::string::npos);
  fs::remove_all(options.cache_dir);
}

TEST_F(PipelineFixture, LoadProgramLinksTheClasspath) {
  auto program = load_program({jar_path_}, /*with_jdk=*/true);
  ASSERT_TRUE(program.ok()) << program.error().to_string();
  EXPECT_GT(program.value().class_count(), 0u);
}

TEST_F(PipelineFixture, ColdRunBuildsACpg) {
  Options options;
  auto result = run({jar_path_}, options);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  const Outcome& outcome = result.value();
  EXPECT_FALSE(outcome.warm);
  EXPECT_GT(outcome.stats.class_nodes, 0u);
  EXPECT_GT(outcome.stats.sink_methods, 0u);
  EXPECT_TRUE(outcome.cache_line.empty());
  EXPECT_TRUE(outcome.graph_bytes.empty());  // not requested
  EXPECT_FALSE(outcome.program.has_value());
}

TEST_F(PipelineFixture, GraphBytesAreTheExactStoreSerialization) {
  Options options;
  options.need_graph_bytes = true;
  auto result = run({jar_path_}, options);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_EQ(result.value().graph_bytes, graph::serialize(result.value().db));
}

TEST_F(PipelineFixture, NeedProgramKeepsTheLinkedProgram) {
  Options options;
  options.need_program = true;
  auto result = run({jar_path_}, options);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  ASSERT_TRUE(result.value().program.has_value());
  EXPECT_GT(result.value().program->class_count(), 0u);
}

TEST_F(PipelineFixture, WarmRunIsByteIdenticalToCold) {
  Options options;
  options.cache_dir = path("cache");

  auto cold = run({jar_path_}, options);
  ASSERT_TRUE(cold.ok()) << cold.error().to_string();
  EXPECT_FALSE(cold.value().warm);
  EXPECT_NE(cold.value().cache_line.find("snapshot miss"), std::string::npos);
  ASSERT_FALSE(cold.value().graph_bytes.empty());  // cache runs embed the store

  auto warm = run({jar_path_}, options);
  ASSERT_TRUE(warm.ok()) << warm.error().to_string();
  EXPECT_TRUE(warm.value().warm);
  EXPECT_NE(warm.value().cache_line.find("snapshot hit"), std::string::npos);
  EXPECT_EQ(cold.value().graph_bytes, warm.value().graph_bytes);
  EXPECT_EQ(cold.value().stats.class_nodes, warm.value().stats.class_nodes);
  EXPECT_EQ(cold.value().stats.relationship_edges, warm.value().stats.relationship_edges);
}

TEST_F(PipelineFixture, WarmRunWithNeedProgramStillLinks) {
  Options options;
  options.cache_dir = path("cache");
  ASSERT_TRUE(run({jar_path_}, options).ok());  // populate

  options.need_program = true;
  auto warm = run({jar_path_}, options);
  ASSERT_TRUE(warm.ok()) << warm.error().to_string();
  EXPECT_TRUE(warm.value().warm);
  ASSERT_TRUE(warm.value().program.has_value());
  EXPECT_GT(warm.value().program->class_count(), 0u);
}

TEST_F(PipelineFixture, InMemoryOverloadMatchesTheArchivePath) {
  auto program = load_program({jar_path_}, /*with_jdk=*/true);
  ASSERT_TRUE(program.ok());

  Options options;
  options.need_graph_bytes = true;
  Outcome from_program = run(program.value(), options);
  auto from_archives = run({jar_path_}, options);
  ASSERT_TRUE(from_archives.ok());
  EXPECT_EQ(from_program.graph_bytes, from_archives.value().graph_bytes);
}

TEST_F(PipelineFixture, MakePoolHonorsTheSerialContract) {
  EXPECT_EQ(make_pool(1), nullptr);
  auto pool = make_pool(3);
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->concurrency(), 3u);
}

TEST_F(PipelineFixture, ParallelRunMatchesSerialByteForByte) {
  Options serial;
  serial.need_graph_bytes = true;
  auto pool = make_pool(4);
  Options parallel = serial;
  parallel.executor = pool.get();

  auto a = run({jar_path_}, serial);
  auto b = run({jar_path_}, parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().graph_bytes, b.value().graph_bytes);
}

TEST(Pipeline, DegradationReportRendersOneLinePerUnit) {
  DegradationReport report;
  EXPECT_FALSE(report.degraded());
  EXPECT_EQ(report.to_string(), "");
  report.add("a.tjar", "fs-read", "cannot open", 0);
  report.add("b.tjar", "archive-decode", "bad magic", 12);
  report.deadline_hit = true;
  report.partial_sinks = 2;
  EXPECT_TRUE(report.degraded());
  std::string text = report.to_string();
  EXPECT_NE(text.find("degraded: [fs-read] a.tjar: cannot open"), std::string::npos);
  EXPECT_NE(text.find("degraded: [archive-decode] b.tjar: bad magic (12 byte(s) skipped)"),
            std::string::npos);
  EXPECT_NE(text.find("deadline exceeded"), std::string::npos);
  EXPECT_NE(text.find("2 sink search(es)"), std::string::npos);
}

TEST_F(PipelineFixture, QuarantineSalvagesWhatStrictRejects) {
  // A truncated sibling of the clean archive on the same classpath.
  std::vector<std::byte> bytes = jar::write_archive(corpus::build_component("BeanShell1").jar);
  bytes.resize(bytes.size() / 2);
  std::string bad = path("truncated.tjar");
  {
    std::ofstream out(bad, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  Options strict;
  EXPECT_FALSE(run({jar_path_, bad}, strict).ok());  // library default: fail fast

  Options quarantine;
  quarantine.policy = FailurePolicy::kQuarantine;
  auto result = run({jar_path_, bad}, quarantine);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_TRUE(result.value().degradation.degraded());
  ASSERT_EQ(result.value().degradation.units.size(), 1u);
  EXPECT_NE(result.value().degradation.units[0].unit.find("truncated.tjar"), std::string::npos);
  EXPECT_GT(result.value().stats.class_nodes, 0u);  // the clean archive survived
}

TEST_F(PipelineFixture, ExpiredDeadlineDegradesQuarantineAndFailsStrict) {
  Options quarantine;
  quarantine.policy = FailurePolicy::kQuarantine;
  quarantine.deadline = util::Deadline::after(std::chrono::milliseconds{0});
  auto degraded = run({jar_path_}, quarantine);
  ASSERT_TRUE(degraded.ok()) << degraded.error().to_string();
  EXPECT_TRUE(degraded.value().degradation.deadline_hit);
  EXPECT_TRUE(degraded.value().degradation.degraded());

  Options strict;
  strict.deadline = util::Deadline::after(std::chrono::milliseconds{0});
  EXPECT_FALSE(run({jar_path_}, strict).ok());
}

TEST_F(PipelineFixture, CancelTokenReadsAsAnExpiredDeadline) {
  util::CancelToken token;
  token.cancel();
  Options options;
  options.policy = FailurePolicy::kQuarantine;
  options.cancel = &token;
  auto result = run({jar_path_}, options);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_TRUE(result.value().degradation.deadline_hit);
}

TEST_F(PipelineFixture, GenerousDeadlineLeavesOutputByteIdentical) {
  Options plain;
  plain.need_graph_bytes = true;
  Options bounded = plain;
  bounded.policy = FailurePolicy::kQuarantine;
  bounded.deadline = util::Deadline::after(std::chrono::hours{1});
  auto a = run({jar_path_}, plain);
  auto b = run({jar_path_}, bounded);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(b.value().degradation.degraded());
  EXPECT_EQ(a.value().graph_bytes, b.value().graph_bytes);
}

TEST_F(PipelineFixture, DegradedRunsNeverPublishSnapshots) {
  std::vector<std::byte> bytes = jar::write_archive(corpus::build_component("BeanShell1").jar);
  bytes.resize(bytes.size() * 3 / 4);
  std::string bad = path("truncated2.tjar");
  {
    std::ofstream out(bad, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  Options options;
  options.policy = FailurePolicy::kQuarantine;
  options.cache_dir = path("cache_degraded");

  auto first = run({jar_path_, bad}, options);
  ASSERT_TRUE(first.ok()) << first.error().to_string();
  EXPECT_TRUE(first.value().degradation.degraded());
  EXPECT_FALSE(first.value().warm);

  // The degraded CPG was not published: the identical second run is another
  // cold build (which re-observes and re-reports the same degradation), so
  // a later repaired classpath can never warm-start from the holes.
  auto second = run({jar_path_, bad}, options);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second.value().warm);
  EXPECT_TRUE(second.value().degradation.degraded());
  EXPECT_EQ(first.value().stats.class_nodes, second.value().stats.class_nodes);
}

}  // namespace
}  // namespace tabby::pipeline
