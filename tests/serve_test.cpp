// The `tabby serve` daemon and its wire protocol: an in-process daemon on a
// unix socket, driven through serve::client_request and the `tabby client`
// subcommand. Covers byte-equivalence of daemon find/query vs the one-shot
// CLI, admission control through the protocol, eviction + stats ops, the
// serve.request failpoint (daemon answers the next request cleanly after a
// mid-request fault), and the JSON codec the protocol rides on.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/cli.hpp"
#include "corpus/components.hpp"
#include "jar/archive.hpp"
#include "serve/json.hpp"
#include "serve/serve.hpp"
#include "util/failpoint.hpp"

namespace tabby {
namespace {

namespace fs = std::filesystem;

struct CliRun {
  int code = 0;
  std::string out;
  std::string err;
};

CliRun run_cli_capture(std::vector<std::string> args) {
  std::ostringstream out, err;
  CliRun result;
  result.code = cli::run_cli(args, out, err);
  result.out = out.str();
  result.err = err.str();
  return result;
}

/// Drops the wall-clock header line ("N gadget chain(s), T s search") —
/// the only non-deterministic bytes in `tabby find` output.
std::string strip_timing(const std::string& text) {
  std::istringstream lines(text);
  std::string line, kept;
  while (std::getline(lines, line)) {
    if (line.find(" s search") != std::string::npos) continue;
    kept += line;
    kept += '\n';
  }
  return kept;
}

class ServeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    util::failpoint::disarm();
    dir_ = fs::temp_directory_path() / ("tabby_serve_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
    jar_a_ = (dir_ / "beanshell.tjar").string();
    jar_b_ = (dir_ / "rome.tjar").string();
    ASSERT_TRUE(jar::write_archive_file(corpus::build_component("BeanShell1").jar, jar_a_).ok());
    ASSERT_TRUE(jar::write_archive_file(corpus::build_component("Rome").jar, jar_b_).ok());
  }

  void TearDown() override {
    stop_daemon();
    util::failpoint::deactivate_all();
    util::failpoint::disarm();
    fs::remove_all(dir_);
  }

  /// Starts `tabby serve` on a fresh short socket path inside a thread (the
  /// sun_path limit rules out paths under the test's temp dir).
  void start_daemon(std::vector<std::string> extra = {}) {
    static int counter = 0;
    socket_ = "/tmp/tsrv_" + std::to_string(::getpid()) + "_" + std::to_string(counter++);
    std::vector<std::string> args{"serve", socket_};
    args.insert(args.end(), extra.begin(), extra.end());
    daemon_ = std::thread([this, args] { daemon_code_ = cli::run_cli(args, daemon_out_, daemon_err_); });
  }

  void stop_daemon() {
    if (!daemon_.joinable()) return;
    run_cli_capture({"client", socket_, "shutdown"});
    daemon_.join();
    EXPECT_EQ(daemon_code_, 0) << daemon_err_.str();
  }

  /// One protocol round trip; client_request retries while the daemon's
  /// socket is still coming up, so no explicit readiness wait is needed.
  std::optional<serve::Json> round_trip(const serve::Json& request) {
    auto reply = serve::client_request(socket_, request.dump());
    if (!reply.ok()) {
      ADD_FAILURE() << "client_request failed: " << reply.error().to_string();
      return std::nullopt;
    }
    return serve::Json::parse(reply.value());
  }

  serve::Json request_for(const std::string& op, const std::vector<std::string>& classpath = {}) {
    serve::Json request = serve::Json::object();
    request.set("op", op);
    if (!classpath.empty()) {
      serve::Json jars = serve::Json::array();
      for (const std::string& jar : classpath) jars.push(serve::Json::string(jar));
      request.set("classpath", std::move(jars));
    }
    return request;
  }

  fs::path dir_;
  std::string jar_a_;
  std::string jar_b_;
  std::string socket_;
  std::thread daemon_;
  int daemon_code_ = -1;
  std::ostringstream daemon_out_;
  std::ostringstream daemon_err_;
};

TEST_F(ServeFixture, FindThroughDaemonMatchesOneShotCli) {
  CliRun one_shot = run_cli_capture({"find", jar_a_});
  ASSERT_EQ(one_shot.code, 0) << one_shot.err;

  start_daemon();
  auto response = round_trip(request_for("find", {jar_a_}));
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(response->flag("ok")) << response->str("error");
  EXPECT_TRUE(response->flag("used_frozen"));
  EXPECT_GT(response->num("chains"), 0);
  // The response embeds the exact bytes cmd_find prints; only the timing
  // header line differs between runs.
  EXPECT_EQ(strip_timing(response->str("text")), strip_timing(one_shot.out));
}

TEST_F(ServeFixture, QueryThroughDaemonMatchesOneShotCli) {
  const std::string query = "MATCH (m:Method {IS_SINK: true}) RETURN m.NAME, m.SIGNATURE";
  CliRun one_shot = run_cli_capture({"query", jar_a_, query});
  ASSERT_EQ(one_shot.code, 0) << one_shot.err;

  start_daemon();
  serve::Json request = request_for("query", {jar_a_});
  request.set("text", query);
  auto response = round_trip(request);
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(response->flag("ok")) << response->str("error");
  EXPECT_EQ(response->str("text"), one_shot.out);  // exact: no timing in query output
}

TEST_F(ServeFixture, ClientSubcommandMatchesOneShotCli) {
  CliRun find_direct = run_cli_capture({"find", jar_a_});
  const std::string query = "MATCH (m:Method)-[:CALL]->(s:Method {IS_SINK: true}) RETURN m.NAME";
  CliRun query_direct = run_cli_capture({"query", jar_a_, query});
  ASSERT_EQ(find_direct.code, 0);
  ASSERT_EQ(query_direct.code, 0);

  start_daemon();
  CliRun opened = run_cli_capture({"client", socket_, "open", jar_a_});
  EXPECT_EQ(opened.code, 0) << opened.err;
  EXPECT_NE(opened.out.find("opened "), std::string::npos) << opened.out;

  CliRun find_client = run_cli_capture({"client", socket_, "find", jar_a_});
  EXPECT_EQ(find_client.code, find_direct.code);
  EXPECT_EQ(strip_timing(find_client.out), strip_timing(find_direct.out));

  CliRun query_client = run_cli_capture({"client", socket_, "query", jar_a_, query});
  EXPECT_EQ(query_client.code, query_direct.code);
  EXPECT_EQ(query_client.out, query_direct.out);
}

TEST_F(ServeFixture, TwoTenantsShareOneDaemonAndHitResidency) {
  start_daemon();
  auto tenant = [&](const std::string& jar) {
    for (int round = 0; round < 2; ++round) {
      auto found = round_trip(request_for("find", {jar}));
      ASSERT_TRUE(found.has_value());
      EXPECT_TRUE(found->flag("ok")) << found->str("error");
      serve::Json query = request_for("query", {jar});
      query.set("text", "MATCH (m:Method {IS_SINK: true}) RETURN m.NAME");
      auto rows = round_trip(query);
      ASSERT_TRUE(rows.has_value());
      EXPECT_TRUE(rows->flag("ok")) << rows->str("error");
    }
  };
  std::thread ta([&] { tenant(jar_a_); });
  std::thread tb([&] { tenant(jar_b_); });
  ta.join();
  tb.join();

  auto stats = round_trip(request_for("stats"));
  ASSERT_TRUE(stats.has_value());
  EXPECT_TRUE(stats->flag("ok"));
  EXPECT_EQ(stats->num("requests"), 9);  // 2 tenants x 4 + this stats call
  // Each tenant's first open was a miss; the remaining 3 opens were hits.
  EXPECT_EQ(stats->num("opens"), 8);
  EXPECT_EQ(stats->num("resident_hits"), 6);
  EXPECT_EQ(stats->num("evictions"), 0);
  ASSERT_TRUE(stats->find("resident") != nullptr);
  EXPECT_EQ(stats->find("resident")->items().size(), 2u);
}

TEST_F(ServeFixture, OverCapacityOpenIsAStructuredError) {
  start_daemon({"--mem-budget", "64k"});
  auto response = round_trip(request_for("open", {jar_a_}));
  ASSERT_TRUE(response.has_value());
  EXPECT_FALSE(response->flag("ok"));
  EXPECT_EQ(response->str("kind"), "over-capacity");
  EXPECT_NE(response->str("error").find("over-capacity"), std::string::npos);

  // The daemon survives the rejection and keeps serving.
  auto stats = round_trip(request_for("stats"));
  ASSERT_TRUE(stats.has_value());
  EXPECT_TRUE(stats->flag("ok"));
  EXPECT_EQ(stats->num("over_capacity"), 1);
  EXPECT_EQ(stats->num("resident_bytes"), 0);

  CliRun client = run_cli_capture({"client", socket_, "open", jar_a_});
  EXPECT_EQ(client.code, 1);
  EXPECT_NE(client.err.find("over-capacity"), std::string::npos) << client.err;
}

TEST_F(ServeFixture, TightBudgetEvictsBetweenTenants) {
  start_daemon({"--mem-budget", "900k"});
  auto a = round_trip(request_for("open", {jar_a_}));
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(a->flag("ok")) << a->str("error");
  auto b = round_trip(request_for("open", {jar_b_}));
  ASSERT_TRUE(b.has_value());
  ASSERT_TRUE(b->flag("ok")) << b->str("error");

  auto stats = round_trip(request_for("stats"));
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->num("evictions"), 1);
  ASSERT_TRUE(stats->find("resident") != nullptr);
  ASSERT_EQ(stats->find("resident")->items().size(), 1u);
  EXPECT_EQ(stats->find("resident")->items()[0].str("fingerprint"), b->str("fingerprint"));

  // Both tenants still get correct answers after the eviction churn.
  auto found = round_trip(request_for("find", {jar_a_}));
  ASSERT_TRUE(found.has_value());
  EXPECT_TRUE(found->flag("ok")) << found->str("error");
  EXPECT_GT(found->num("chains"), 0);
}

TEST_F(ServeFixture, EvictOpDropsResidency) {
  start_daemon();
  auto opened = round_trip(request_for("open", {jar_a_}));
  ASSERT_TRUE(opened.has_value());
  ASSERT_TRUE(opened->flag("ok"));
  std::string fingerprint = opened->str("fingerprint");

  CliRun miss = run_cli_capture({"client", socket_, "evict", serve::hex64(0x1234)});
  EXPECT_EQ(miss.code, 0);
  EXPECT_NE(miss.out.find("evicted 0"), std::string::npos) << miss.out;

  serve::Json evict = request_for("evict");
  evict.set("fingerprint", fingerprint);
  auto response = round_trip(evict);
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(response->flag("ok"));
  EXPECT_EQ(response->num("evicted"), 1);

  auto stats = round_trip(request_for("stats"));
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->num("evictions"), 1);
  EXPECT_EQ(stats->find("resident")->items().size(), 0u);
}

TEST_F(ServeFixture, FailpointKillsOneRequestAndTheDaemonAnswersTheNext) {
  start_daemon();
  auto warm = round_trip(request_for("open", {jar_a_}));
  ASSERT_TRUE(warm.has_value());
  ASSERT_TRUE(warm->flag("ok"));

  util::failpoint::arm();
  util::failpoint::activate("serve.request", 1);
  auto killed = round_trip(request_for("find", {jar_a_}));
  ASSERT_TRUE(killed.has_value());
  EXPECT_FALSE(killed->flag("ok"));
  EXPECT_EQ(killed->str("kind"), "internal");
  EXPECT_NE(killed->str("error").find("serve.request"), std::string::npos);
  util::failpoint::disarm();

  // Same connection class, next request: clean answer, fault accounted.
  auto found = round_trip(request_for("find", {jar_a_}));
  ASSERT_TRUE(found.has_value());
  EXPECT_TRUE(found->flag("ok")) << found->str("error");
  EXPECT_GT(found->num("chains"), 0);

  auto stats = round_trip(request_for("stats"));
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->num("failpoint_failures"), 1);
}

TEST_F(ServeFixture, MalformedAndUnknownRequestsGetUsageErrors) {
  start_daemon();
  auto reply = serve::client_request(socket_, "this is not json");
  ASSERT_TRUE(reply.ok()) << reply.error().to_string();
  auto response = serve::Json::parse(reply.value());
  ASSERT_TRUE(response.has_value());
  EXPECT_FALSE(response->flag("ok"));
  EXPECT_EQ(response->str("kind"), "usage");

  serve::Json unknown = request_for("frobnicate");
  unknown.set("id", std::string("req-7"));
  auto echoed = round_trip(unknown);
  ASSERT_TRUE(echoed.has_value());
  EXPECT_FALSE(echoed->flag("ok"));
  EXPECT_EQ(echoed->str("kind"), "usage");
  EXPECT_EQ(echoed->str("id"), "req-7");  // ids echo back even on errors

  auto no_classpath = round_trip(request_for("find"));
  ASSERT_TRUE(no_classpath.has_value());
  EXPECT_FALSE(no_classpath->flag("ok"));
  EXPECT_EQ(no_classpath->str("kind"), "usage");
}

TEST_F(ServeFixture, BadQueryReportsTheQueryErrorKind) {
  start_daemon();
  serve::Json request = request_for("query", {jar_a_});
  request.set("text", "MATCH (m:Method RETURN");
  auto response = round_trip(request);
  ASSERT_TRUE(response.has_value());
  EXPECT_FALSE(response->flag("ok"));
  EXPECT_EQ(response->str("kind"), "query");
}

TEST_F(ServeFixture, ShutdownStopsTheDaemonCleanly) {
  start_daemon();
  CliRun shutdown = run_cli_capture({"client", socket_, "shutdown"});
  EXPECT_EQ(shutdown.code, 0) << shutdown.err;
  daemon_.join();
  EXPECT_EQ(daemon_code_, 0) << daemon_err_.str();
  EXPECT_NE(daemon_out_.str().find("serving on " + socket_), std::string::npos);
}

// --- the JSON codec under the protocol -------------------------------------

TEST(ServeJsonTest, ObjectsSerializeInInsertionOrderAndLastSetWins) {
  serve::Json object = serve::Json::object();
  object.set("zeta", std::uint64_t{1});
  object.set("alpha", true);
  object.set("zeta", std::uint64_t{2});
  EXPECT_EQ(object.dump(), "{\"zeta\":2,\"alpha\":true}");
}

TEST(ServeJsonTest, IntegersEmitWithoutADecimalPoint) {
  serve::Json object = serve::Json::object();
  object.set("count", std::uint64_t{42});
  object.set("ratio", 0.5);
  std::string dumped = object.dump();
  EXPECT_NE(dumped.find("\"count\":42"), std::string::npos) << dumped;
  EXPECT_NE(dumped.find("\"ratio\":0.5"), std::string::npos) << dumped;
}

TEST(ServeJsonTest, StringsRoundTripThroughEscaping) {
  serve::Json object = serve::Json::object();
  object.set("text", std::string("line1\nline2\t\"quoted\" \\slash\x01"));
  std::string dumped = object.dump();
  EXPECT_EQ(dumped.find('\n'), std::string::npos);  // newline-delimited protocol
  auto parsed = serve::Json::parse(dumped);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->str("text"), "line1\nline2\t\"quoted\" \\slash\x01");
}

TEST(ServeJsonTest, ParserIsStrict) {
  EXPECT_FALSE(serve::Json::parse("{\"a\":1} trailing").has_value());
  EXPECT_FALSE(serve::Json::parse("{\"a\":").has_value());
  EXPECT_FALSE(serve::Json::parse("{'a':1}").has_value());
  EXPECT_FALSE(serve::Json::parse("").has_value());
  auto unicode = serve::Json::parse("{\"a\":\"\\u0041\"}");
  ASSERT_TRUE(unicode.has_value());
  EXPECT_EQ(unicode->str("a"), "A");
}

TEST(ServeJsonTest, AccessorsTolerateMissingKeys) {
  auto parsed = serve::Json::parse("{\"name\":\"x\",\"n\":3,\"on\":true,\"list\":[\"a\",\"b\",7]}");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->str("name"), "x");
  EXPECT_EQ(parsed->str("missing", "fallback"), "fallback");
  EXPECT_EQ(parsed->num("n"), 3);
  EXPECT_EQ(parsed->num("missing", -1), -1);
  EXPECT_TRUE(parsed->flag("on"));
  EXPECT_FALSE(parsed->flag("missing"));
  std::vector<std::string> list = parsed->strings("list");
  ASSERT_EQ(list.size(), 2u);  // the non-string element is skipped
  EXPECT_EQ(list[0], "a");
  EXPECT_EQ(list[1], "b");
}

TEST(ServeJsonTest, Hex64RoundTripsAllSixtyFourBits) {
  EXPECT_EQ(serve::hex64(0), "0000000000000000");
  std::uint64_t value = 0xdeadbeefcafef00dULL;
  std::string hex = serve::hex64(value);
  EXPECT_EQ(hex.size(), 16u);
  auto back = serve::parse_hex64(hex);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, value);
  EXPECT_FALSE(serve::parse_hex64("deadbeef").has_value());          // too short
  EXPECT_FALSE(serve::parse_hex64(hex + "0").has_value());           // too long
  EXPECT_FALSE(serve::parse_hex64("zzzzzzzzzzzzzzzz").has_value());  // not hex
}

}  // namespace
}  // namespace tabby
