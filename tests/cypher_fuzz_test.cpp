// Differential query-fuzz harness for the Cypher planner (docs/CYPHER.md).
//
// The planner's contract is absolute: for every query, planned execution
// produces output *byte-identical* to the naive evaluator — same rows, same
// order — on both graph representations, at any job count. This harness
// generates seeded random graphs (tests/support/random_graph.hpp) and seeded
// random queries over the same label/type/key vocabulary, then runs each
// query through a 4-way oracle:
//
//      {naive, planned} x {GraphDb, FrozenGraph}
//
// plus a planned run with a thread pool and a memory budget attached (the
// prepass parallelizes; results must not change). Any mismatch prints the
// graph seed, query seed, and query text — rerunning with those two seeds
// reproduces the case exactly.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cypher/cypher.hpp"
#include "graph/frozen.hpp"
#include "graph/graph.hpp"
#include "support/random_graph.hpp"
#include "util/memory_budget.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace tabby {
namespace {

// Vocabulary matching tests/support/random_graph.hpp, plus deliberate misses
// (labels/keys/values the generator never produces) so empty-result plans
// and "no such label" proofs get fuzzed too.
const char* kLabels[] = {"Method", "Class", "Field", "Call", "Ghost"};
const char* kTypes[] = {"CALL", "ALIAS", "EXTENDS", "CONTAINS", "PHANTOM"};
const char* kKeys[] = {"NAME", "ORDER", "IS_SINK", "SCORE", "POS", "TAGS", "MIX", "NOPE"};

std::string random_literal(util::Rng& rng) {
  switch (rng.next_below(5)) {
    case 0: return std::to_string(rng.next_below(1000));
    case 1: return "\"s" + std::to_string(rng.next_below(50)) + "\"";
    case 2: return rng.next_below(2) == 0 ? "true" : "false";
    case 3: return "\"n" + std::to_string(rng.next_below(40)) + "\"";  // NAME hits
    default: return "\"t" + std::to_string(rng.next_below(9)) + "\"";
  }
}

std::string random_comparison(util::Rng& rng) {
  const char* ops[] = {"=", "<>", "<", ">", "<=", ">=", "CONTAINS", "STARTS WITH", "ENDS WITH"};
  return ops[rng.next_below(9)];
}

/// One random query over vars a, b, c: 1-3 pattern nodes, random directions,
/// optional types and labels, var-length segments capped at 3 hops, inline
/// property maps, WHERE chains (sometimes on unbound vars — a provably-empty
/// plan), RETURN over nodes/properties/path, occasional LIMIT.
std::string random_query(util::Rng& rng) {
  const char* vars[] = {"a", "b", "c"};
  std::size_t node_count = 1 + rng.next_below(3);
  bool with_path = rng.chance(15, 100);

  std::string q = "MATCH ";
  if (with_path) q += "p = ";
  for (std::size_t i = 0; i < node_count; ++i) {
    q += "(";
    q += vars[i];
    if (rng.chance(60, 100)) q += std::string(":") + kLabels[rng.next_below(5)];
    if (rng.chance(25, 100)) {
      q += " {" + std::string(kKeys[rng.next_below(8)]) + ": " + random_literal(rng) + "}";
    }
    q += ")";
    if (i + 1 < node_count) {
      bool left = rng.chance(30, 100);
      q += left ? "<-[" : "-[";
      if (rng.chance(70, 100)) q += std::string(":") + kTypes[rng.next_below(5)];
      if (rng.chance(40, 100)) {
        // Variable length, capped at 3 hops to bound enumeration.
        switch (rng.next_below(4)) {
          case 0: q += "*..2"; break;
          case 1: q += "*1..3"; break;
          case 2: q += "*2"; break;
          default: q += "*0..2"; break;
        }
      }
      q += "]";
      q += left ? "-" : (rng.chance(75, 100) ? "->" : "-");
    }
  }

  std::size_t conds = rng.next_below(3);
  for (std::size_t i = 0; i < conds; ++i) {
    q += i == 0 ? " WHERE " : " AND ";
    // Occasionally reference a var the pattern does not bind: the planner
    // must prove the result empty, not misfire.
    const char* var = rng.chance(10, 100) ? "zz" : vars[rng.next_below(node_count)];
    q += std::string(var) + "." + kKeys[rng.next_below(8)] + " " + random_comparison(rng) + " " +
         random_literal(rng);
  }

  q += " RETURN ";
  std::size_t items = 1 + rng.next_below(2);
  for (std::size_t i = 0; i < items; ++i) {
    if (i > 0) q += ", ";
    if (with_path && i == 0 && rng.chance(50, 100)) {
      q += "p";
      continue;
    }
    q += vars[rng.next_below(node_count)];
    if (rng.chance(60, 100)) q += std::string(".") + kKeys[rng.next_below(8)];
  }
  if (rng.chance(30, 100)) q += " LIMIT " + std::to_string(1 + rng.next_below(20));
  return q;
}

struct Rendered {
  bool ok = false;
  std::string error;
  std::string text;
};

template <typename DB>
Rendered run_one(const DB& db, const std::string& query, const cypher::QueryOptions& options) {
  Rendered out;
  auto result = cypher::run_query(db, query, options);
  if (!result.ok()) {
    out.error = result.error().to_string();
    return out;
  }
  out.ok = true;
  out.text = result.value().to_string(db);
  return out;
}

/// The 4-way (plus parallel/metered) oracle for one (graph, query) pair.
/// Returns false after recording a failure so callers can stop early.
bool check_case(const graph::GraphDb& db, const graph::FrozenGraph& frozen,
                const std::string& query, std::uint64_t graph_seed, std::uint64_t query_seed,
                util::Executor* pool) {
  std::string ctx = "graph_seed=" + std::to_string(graph_seed) +
                    " query_seed=" + std::to_string(query_seed) + "\nquery: " + query;

  cypher::QueryOptions naive;
  naive.use_planner = false;
  cypher::QueryOptions planned;
  cypher::QueryOptions planned_parallel;
  planned_parallel.executor = pool;
  util::MemoryBudget budget(64ull << 20);
  planned_parallel.memory = &budget;

  Rendered reference = run_one(db, query, naive);
  struct Variant {
    const char* name;
    Rendered result;
  };
  Variant variants[] = {
      {"planned/GraphDb", run_one(db, query, planned)},
      {"naive/Frozen", run_one(frozen, query, naive)},
      {"planned/Frozen", run_one(frozen, query, planned)},
      {"planned+jobs+budget/GraphDb", run_one(db, query, planned_parallel)},
      {"planned+jobs+budget/Frozen", run_one(frozen, query, planned_parallel)},
  };
  for (const Variant& v : variants) {
    EXPECT_EQ(reference.ok, v.result.ok) << ctx << "\nvariant: " << v.name;
    if (reference.ok != v.result.ok) return false;
    if (!reference.ok) {
      EXPECT_EQ(reference.error, v.result.error) << ctx << "\nvariant: " << v.name;
      if (reference.error != v.result.error) return false;
      continue;
    }
    EXPECT_EQ(reference.text, v.result.text) << ctx << "\nvariant: " << v.name;
    if (reference.text != v.result.text) return false;
  }
  return true;
}

// 60 graphs x 4 queries = 240 differential cases per run, every one checked
// across all variants — comfortably past the 200-case CI floor.
TEST(CypherFuzz, PlannedMatchesNaiveOnBothRepresentationsAtAnyJobCount) {
  util::ThreadPool pool(4);
  std::size_t cases = 0;
  for (std::uint64_t graph_seed = 1; graph_seed <= 60; ++graph_seed) {
    graph::GraphDb db = testsupport::random_graph(graph_seed);
    auto frozen = graph::FrozenGraph::freeze(db);
    ASSERT_TRUE(frozen.ok()) << frozen.error().message;
    for (std::uint64_t q = 0; q < 4; ++q) {
      std::uint64_t query_seed = graph_seed * 1000 + q;
      util::Rng rng(query_seed);
      std::string query = random_query(rng);
      ++cases;
      if (!check_case(db, frozen.value(), query, graph_seed, query_seed, &pool)) {
        return;  // context already printed; stop at the first mismatch
      }
    }
  }
  EXPECT_GE(cases, 200u);
}

// The same queries again with the stats section stripped from the frozen
// frame (with_stats=false): the planner falls back to default estimates and
// must still be byte-identical — stats change plans, never answers.
TEST(CypherFuzz, StatsLessFrozenFramePlansDifferentlyButAnswersIdentically) {
  for (std::uint64_t graph_seed = 1; graph_seed <= 12; ++graph_seed) {
    graph::GraphDb db = testsupport::random_graph(graph_seed);
    auto bare = graph::FrozenGraph::freeze(db, 0, nullptr, /*with_stats=*/false);
    ASSERT_TRUE(bare.ok()) << bare.error().message;
    ASSERT_FALSE(bare.value().stats().has_value());
    for (std::uint64_t q = 0; q < 4; ++q) {
      std::uint64_t query_seed = graph_seed * 1000 + q;
      util::Rng rng(query_seed);
      std::string query = random_query(rng);
      if (!check_case(db, bare.value(), query, graph_seed, query_seed, nullptr)) return;
    }
  }
}

// Adversarial hand-picked patterns that target each planner decision: the
// fuzz grammar hits these shapes rarely, so pin them explicitly.
TEST(CypherFuzz, DirectedAdversarialPatterns) {
  const char* queries[] = {
      // Unbound start, selective end: the reversal case.
      "MATCH (a)-[:CALL]->(b:Ghost) RETURN a, b",
      "MATCH (a)-[:CALL*..3]->(b:Field {ORDER: 1}) RETURN a.NAME, b",
      // Zero-length lower bound: node can match both endpoints at once.
      "MATCH (a:Method)-[:CALL*0..2]->(b:Method) RETURN a.NAME, b.NAME",
      // min_len above the shortest path: first-reach-only filters would
      // wrongly prune nodes whose shortest walk is shorter than min.
      "MATCH (a:Method)-[:CALL*2..3]->(b:Class) RETURN a.NAME, b.NAME LIMIT 50",
      // Undirected and untyped middle segment.
      "MATCH (a:Class)-[*..2]-(b:Field) RETURN a, b.NAME LIMIT 40",
      // Three nodes, mixed directions, pushdown on the middle var.
      "MATCH (a:Method)-[:CALL]->(b)<-[:ALIAS]-(c) WHERE b.ORDER >= 2 RETURN a.NAME, b.ORDER, c",
      // Repeated variable: pushdown must NOT fire (last binding wins).
      "MATCH (a:Method)-[:CALL]->(a) WHERE a.ORDER > 1 RETURN a.NAME",
      // Path binding plus WHERE on an interior node.
      "MATCH p = (a:Method)-[:CALL*1..3]->(b:Method) WHERE b.IS_SINK = true RETURN p LIMIT 30",
      // LIMIT 1: the planner should decline the prepass, answers unchanged.
      "MATCH (a)-[:EXTENDS]->(b:Class) RETURN a LIMIT 1",
  };
  util::ThreadPool pool(3);
  for (std::uint64_t graph_seed = 1; graph_seed <= 10; ++graph_seed) {
    graph::GraphDb db = testsupport::random_graph(graph_seed);
    auto frozen = graph::FrozenGraph::freeze(db);
    ASSERT_TRUE(frozen.ok()) << frozen.error().message;
    std::uint64_t qi = 0;
    for (const char* query : queries) {
      if (!check_case(db, frozen.value(), query, graph_seed, /*query_seed=*/qi++, &pool)) return;
    }
  }
}

}  // namespace
}  // namespace tabby
