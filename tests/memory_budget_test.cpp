// Unit tests for util::MemoryBudget (the byte-accounted ledger behind
// --mem-budget) and util::parse_size_bytes (the flag's value syntax).
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "util/memory_budget.hpp"
#include "util/strings.hpp"

namespace tabby::util {
namespace {

TEST(MemoryBudget, DefaultIsUnbounded) {
  MemoryBudget b;
  EXPECT_FALSE(b.bounded());
  EXPECT_EQ(b.cap(), 0u);
  EXPECT_EQ(b.remaining(), SIZE_MAX);
  b.charge(1 << 20);
  EXPECT_FALSE(b.exceeded());
  EXPECT_EQ(b.remaining(), SIZE_MAX);
}

TEST(MemoryBudget, ChargeReleaseDrainsToZero) {
  MemoryBudget b(1024);
  b.charge(100);
  b.charge(200);
  EXPECT_EQ(b.charged(), 300u);
  EXPECT_FALSE(b.exceeded());
  EXPECT_EQ(b.remaining(), 724u);
  b.release(200);
  b.release(100);
  EXPECT_EQ(b.charged(), 0u);
  EXPECT_EQ(b.peak(), 300u);  // peak survives the drain
}

TEST(MemoryBudget, ExceededOnlyPastCap) {
  MemoryBudget b(100);
  b.charge(100);
  EXPECT_FALSE(b.exceeded());  // at cap is within budget
  EXPECT_EQ(b.remaining(), 0u);
  b.charge(1);
  EXPECT_TRUE(b.exceeded());
  EXPECT_EQ(b.remaining(), 0u);  // saturates, never wraps
}

TEST(MemoryBudget, ChargesPropagateUpTheHierarchy) {
  MemoryBudget root(1 << 20);
  MemoryBudget child(1 << 10, &root);
  child.charge(512);
  EXPECT_EQ(child.charged(), 512u);
  EXPECT_EQ(root.charged(), 512u);
  child.release(512);
  EXPECT_EQ(root.charged(), 0u);
  EXPECT_EQ(root.peak(), 512u);
}

TEST(MemoryBudget, NullTolerantHelpers) {
  maybe_charge(nullptr, 123);  // must be a no-op, not a crash
  maybe_release(nullptr, 123);
  MemoryBudget b(1024);
  maybe_charge(&b, 123);
  EXPECT_EQ(b.charged(), 123u);
  maybe_release(&b, 123);
  EXPECT_EQ(b.charged(), 0u);
}

TEST(MemoryBudget, ScopedChargeReleasesOnDestruction) {
  MemoryBudget b(1024);
  {
    ScopedCharge charge(&b, 400);
    EXPECT_EQ(b.charged(), 400u);
  }
  EXPECT_EQ(b.charged(), 0u);
}

TEST(MemoryBudget, ScopedChargeMoveTransfersOwnership) {
  MemoryBudget b(1024);
  ScopedCharge outer(nullptr, 0);
  {
    ScopedCharge inner(&b, 256);
    outer = std::move(inner);
  }  // inner destroyed: must NOT release (ownership moved out)
  EXPECT_EQ(b.charged(), 256u);
  outer.reset();
  EXPECT_EQ(b.charged(), 0u);
}

TEST(MemoryBudget, ConcurrentChargesBalance) {
  MemoryBudget b(SIZE_MAX - 1);  // bounded, never exceeded
  constexpr int kThreads = 8;
  constexpr int kIterations = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&b] {
      for (int i = 0; i < kIterations; ++i) {
        b.charge(64);
        b.release(64);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(b.charged(), 0u);  // commutative sums: exact at quiescence
  EXPECT_GE(b.peak(), 64u);
}

TEST(ParseSizeBytes, PlainAndSuffixed) {
  EXPECT_EQ(parse_size_bytes("65536").value(), 65536u);
  EXPECT_EQ(parse_size_bytes("512k").value(), 512u * 1024);
  EXPECT_EQ(parse_size_bytes("512K").value(), 512u * 1024);
  EXPECT_EQ(parse_size_bytes("64m").value(), 64u * 1024 * 1024);
  EXPECT_EQ(parse_size_bytes("2g").value(), 2ull * 1024 * 1024 * 1024);
  EXPECT_EQ(parse_size_bytes("0").value(), 0u);
}

TEST(ParseSizeBytes, RejectsMalformed) {
  EXPECT_FALSE(parse_size_bytes("").ok());
  EXPECT_FALSE(parse_size_bytes("64mb").ok());
  EXPECT_FALSE(parse_size_bytes("m").ok());
  EXPECT_FALSE(parse_size_bytes("-1").ok());
  EXPECT_FALSE(parse_size_bytes("1.5g").ok());
  EXPECT_FALSE(parse_size_bytes("12 k").ok());
  // 2^64 overflows even before a suffix; 2^54 * 1g overflows via the scale.
  EXPECT_FALSE(parse_size_bytes("18446744073709551616").ok());
  EXPECT_FALSE(parse_size_bytes("18014398509481984g").ok());
}

}  // namespace
}  // namespace tabby::util
