// Tests for the experiment harness: chain<->truth matching, Formulas 5/6,
// and the headline Table IX invariants — Tabby's aggregate columns must
// reproduce the paper exactly (79/26/26/27), the baselines must exhibit
// their §IV-F defects, and Serianalyzer must explode on Clojure/Jython.
#include <gtest/gtest.h>

#include "corpus/components.hpp"
#include "corpus/scenes.hpp"
#include "evalkit/evalkit.hpp"

namespace tabby::evalkit {
namespace {

finder::GadgetChain make_chain(std::vector<std::string> sigs) {
  finder::GadgetChain chain;
  chain.signatures = std::move(sigs);
  chain.nodes.resize(chain.signatures.size());
  return chain;
}

corpus::GroundTruthChain make_truth(std::string source, std::string sink, bool known = true) {
  corpus::GroundTruthChain truth;
  truth.id = source;
  truth.source_signature = std::move(source);
  truth.sink_signature = std::move(sink);
  truth.known_in_dataset = known;
  return truth;
}

TEST(Classify, MatchesBySourceAndSink) {
  std::vector<corpus::GroundTruthChain> truths{make_truth("a.A#readObject/1", "s.S#exec/1"),
                                               make_truth("a.B#readObject/1", "s.S#exec/1", false)};
  std::vector<finder::GadgetChain> chains{
      make_chain({"a.A#readObject/1", "mid#m/0", "s.S#exec/1"}),
      make_chain({"a.B#readObject/1", "s.S#exec/1"}),
      make_chain({"a.C#readObject/1", "s.S#exec/1"}),  // no truth: fake
  };
  Classification c = classify(chains, truths);
  EXPECT_EQ(c.result, 3u);
  EXPECT_EQ(c.known, 1u);
  EXPECT_EQ(c.unknown, 1u);
  EXPECT_EQ(c.fake, 1u);
}

TEST(Classify, EachTruthCountsOnce) {
  std::vector<corpus::GroundTruthChain> truths{make_truth("a.A#readObject/1", "s.S#exec/1")};
  std::vector<finder::GadgetChain> chains{
      make_chain({"a.A#readObject/1", "x#m/0", "s.S#exec/1"}),
      make_chain({"a.A#readObject/1", "y#m/0", "s.S#exec/1"}),
  };
  Classification c = classify(chains, truths);
  EXPECT_EQ(c.known, 1u);
  EXPECT_EQ(c.fake, 1u);  // the duplicate path counts as noise
}

TEST(Classify, WitnessesMustAppear) {
  corpus::GroundTruthChain truth = make_truth("a.A#readObject/1", "s.S#exec/1");
  truth.witnesses.push_back("gadget.Helper#process/0");
  std::vector<finder::GadgetChain> with{
      make_chain({"a.A#readObject/1", "gadget.Helper#process/0", "s.S#exec/1"})};
  std::vector<finder::GadgetChain> without{make_chain({"a.A#readObject/1", "s.S#exec/1"})};
  EXPECT_EQ(classify(with, {truth}).known, 1u);
  EXPECT_EQ(classify(without, {truth}).known, 0u);
}

TEST(Formulas, FprAndFnr) {
  Classification c;
  c.result = 10;
  c.fake = 3;
  c.known = 5;
  c.unknown = 2;
  EXPECT_DOUBLE_EQ(fpr_percent(c), 30.0);
  EXPECT_DOUBLE_EQ(fnr_percent(c, 10), 50.0);
  EXPECT_DOUBLE_EQ(fnr_percent(c, 0), 0.0);
  Classification empty;
  EXPECT_DOUBLE_EQ(fpr_percent(empty), 0.0);
  EXPECT_DOUBLE_EQ(fnr_percent(empty, 2), 100.0);
}

TEST(ToolNames, AllNamed) {
  EXPECT_EQ(tool_name(Tool::Tabby), "Tabby");
  EXPECT_EQ(tool_name(Tool::GadgetInspector), "GadgetInspector");
  EXPECT_EQ(tool_name(Tool::Serianalyzer), "Serianalyzer");
}

// --- Table IX headline invariants --------------------------------------------

struct Totals {
  std::size_t result = 0, fake = 0, known = 0, unknown = 0;
  std::size_t exploded = 0;
};

class TableIX : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rows_ = new std::vector<ComparisonRow>();
    for (const std::string& name : corpus::component_names()) {
      rows_->push_back(evaluate_component(corpus::build_component(name)));
    }
  }
  static void TearDownTestSuite() {
    delete rows_;
    rows_ = nullptr;
  }

  static Totals totals(ComparisonRow::PerTool ComparisonRow::*tool) {
    Totals t;
    for (const ComparisonRow& row : *rows_) {
      const auto& per = row.*tool;
      t.result += per.result;
      t.fake += per.fake;
      t.known += per.known;
      t.unknown += per.unknown;
      t.exploded += per.exploded ? 1 : 0;
    }
    return t;
  }

  static std::vector<ComparisonRow>* rows_;
};

std::vector<ComparisonRow>* TableIX::rows_ = nullptr;

TEST_F(TableIX, TabbyTotalsMatchThePaperExactly) {
  Totals tb = totals(&ComparisonRow::tb);
  EXPECT_EQ(tb.result, 79u);   // paper Table IX "Result count" TB total
  EXPECT_EQ(tb.fake, 26u);     // paper "Fake" TB total
  EXPECT_EQ(tb.known, 26u);    // paper "Known" TB total
  EXPECT_EQ(tb.unknown, 27u);  // paper "Unknown" TB total
  EXPECT_EQ(tb.exploded, 0u);  // Tabby terminates everywhere
}

TEST_F(TableIX, GadgetInspectorShapeMatchesThePaper) {
  Totals gi = totals(&ComparisonRow::gi);
  // Paper totals: 129 / 120 / 5 / 4. The regenerated corpus lands within a
  // small tolerance; known must be exactly the 5 concrete-dispatch chains.
  EXPECT_NEAR(static_cast<double>(gi.result), 129.0, 10.0);
  EXPECT_NEAR(static_cast<double>(gi.fake), 120.0, 10.0);
  EXPECT_EQ(gi.known, 5u);
  EXPECT_LE(gi.unknown, 4u);
}

TEST_F(TableIX, SerianalyzerExplodesOnClojureAndJython) {
  for (const ComparisonRow& row : *rows_) {
    bool should_explode = row.component == "Clojure" || row.component == "Jython1";
    EXPECT_EQ(row.sl.exploded, should_explode) << row.component;
  }
}

TEST_F(TableIX, AverageFprOrderingMatchesThePaper) {
  // Paper: TB 32.9% << GI 93.0% < SL 98.6% (averaged over rows with output).
  auto average_fpr = [&](ComparisonRow::PerTool ComparisonRow::*tool) {
    double sum = 0.0;
    int n = 0;
    for (const ComparisonRow& row : *rows_) {
      const auto& per = row.*tool;
      if (per.exploded || per.result == 0) continue;
      sum += per.fpr;
      ++n;
    }
    return n == 0 ? 0.0 : sum / n;
  };
  double tb = average_fpr(&ComparisonRow::tb);
  double gi = average_fpr(&ComparisonRow::gi);
  double sl = average_fpr(&ComparisonRow::sl);
  EXPECT_LT(tb, 45.0);
  EXPECT_GT(gi, 80.0);
  EXPECT_GT(sl, 85.0);
  EXPECT_LT(tb, gi);
  EXPECT_LT(gi, sl);
}

TEST_F(TableIX, AverageFnrOrderingMatchesThePaper) {
  // Paper: TB 31.6% << SL 81.6% <= GI 86.8%.
  auto average_fnr = [&](ComparisonRow::PerTool ComparisonRow::*tool) {
    double sum = 0.0;
    int n = 0;
    for (const ComparisonRow& row : *rows_) {
      sum += (row.*tool).fnr;
      ++n;
    }
    return sum / n;
  };
  double tb = average_fnr(&ComparisonRow::tb);
  double gi = average_fnr(&ComparisonRow::gi);
  double sl = average_fnr(&ComparisonRow::sl);
  EXPECT_LT(tb, 45.0);
  EXPECT_GT(gi, 70.0);
  EXPECT_GT(sl, 70.0);
  EXPECT_LT(tb, gi);
  EXPECT_LT(tb, sl);
}

TEST_F(TableIX, TabbyFindsEveryUnknownTheBaselinesFind) {
  // §IV-C: "Tabby found ... including all unknown gadget chains found by
  // Gadgetinspector and Serianalyzer." Per-component: tb.unknown >= others.
  for (const ComparisonRow& row : *rows_) {
    EXPECT_GE(row.tb.unknown, row.gi.unknown) << row.component;
    EXPECT_GE(row.tb.unknown, row.sl.unknown) << row.component;
  }
}

TEST_F(TableIX, SharedMiddleCostsGadgetInspectorChains) {
  // FileUpload1 and Wicket1 plant two chains through one helper: GI's
  // visited-node skipping keeps only one (paper: GI Known 1 of 2).
  for (const ComparisonRow& row : *rows_) {
    if (row.component == "FileUpload1" || row.component == "Wicket1") {
      EXPECT_EQ(row.known_in_dataset, 2u) << row.component;
      EXPECT_EQ(row.gi.known, 1u) << row.component;
      EXPECT_EQ(row.tb.known, 2u) << row.component;
    }
  }
}

// --- Table X -------------------------------------------------------------------

TEST(TableX, SceneRowsMatchThePaperShape) {
  struct Expected {
    const char* name;
    std::size_t result;
    std::size_t effective;
  };
  // Paper Table X: result count and effective chains per scene.
  const Expected expected[] = {
      {"Spring", 10, 7}, {"JDK8", 13, 10}, {"Tomcat", 4, 3}, {"Jetty", 6, 4},
      {"Apache Dubbo", 5, 3}};
  for (const Expected& e : expected) {
    SceneRow row = evaluate_scene(corpus::build_scene(e.name));
    EXPECT_EQ(row.result, e.result) << e.name;
    EXPECT_EQ(row.effective, e.effective) << e.name;
    EXPECT_GT(row.fpr, 0.0) << e.name;
    EXPECT_LT(row.fpr, 50.0) << e.name;
  }
}

TEST(OverallRQ4, EffectiveChainTotalsMatchSection4E) {
  // §IV-E: 117 chains total across both experiments, 80 effective.
  std::size_t total = 0;
  std::size_t effective = 0;
  for (const std::string& name : corpus::component_names()) {
    ComparisonRow row = evaluate_component(corpus::build_component(name));
    total += row.tb.result;
    effective += row.tb.known + row.tb.unknown;
  }
  for (const std::string& name : corpus::scene_names()) {
    SceneRow row = evaluate_scene(corpus::build_scene(name));
    total += row.result;
    effective += row.effective;
  }
  EXPECT_EQ(total, 117u);
  EXPECT_EQ(effective, 80u);
}

}  // namespace
}  // namespace tabby::evalkit
