// Tests for the robustness primitives: the failpoint harness (util/failpoint),
// cooperative deadlines/cancellation (util/deadline) and the --deadline
// duration grammar (util/strings). These are the building blocks the chaos
// and malformed-corpus suites drive end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "cache/cache.hpp"
#include "dist/dist.hpp"
#include "util/deadline.hpp"
#include "util/failpoint.hpp"
#include "util/strings.hpp"

namespace tabby::util {
namespace {

using namespace std::chrono_literals;

/// Every test leaves the process-global harness exactly as it found it
/// (disarmed, no activations) so ordering never matters.
class FailpointFixture : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::disarm(); }
  void TearDown() override { failpoint::disarm(); }
};

TEST_F(FailpointFixture, DisarmedPollNeverFires) {
  failpoint::activate("fs.read");
  EXPECT_FALSE(failpoint::armed());
  EXPECT_FALSE(failpoint::poll("fs.read"));
  EXPECT_EQ(failpoint::fired("fs.read"), 0u);
}

TEST_F(FailpointFixture, ArmedButInactiveSiteDoesNotFire) {
  failpoint::arm();
  EXPECT_TRUE(failpoint::armed());
  EXPECT_FALSE(failpoint::poll("fs.read"));
}

TEST_F(FailpointFixture, ActivatedSiteFiresEveryPoll) {
  failpoint::arm();
  failpoint::activate("fs.read");
  EXPECT_TRUE(failpoint::poll("fs.read"));
  EXPECT_TRUE(failpoint::poll("fs.read"));
  EXPECT_EQ(failpoint::fired("fs.read"), 2u);
  EXPECT_EQ(failpoint::fired("jar.decode"), 0u);  // unrelated site untouched
}

TEST_F(FailpointFixture, TimesBudgetDisarmsAfterNFirings) {
  failpoint::arm();
  failpoint::activate("jar.decode", 2);
  EXPECT_TRUE(failpoint::poll("jar.decode"));
  EXPECT_TRUE(failpoint::poll("jar.decode"));
  EXPECT_FALSE(failpoint::poll("jar.decode"));  // budget spent
  EXPECT_EQ(failpoint::fired("jar.decode"), 2u);
}

TEST_F(FailpointFixture, DeactivateStopsFiringButKeepsHistory) {
  failpoint::arm();
  failpoint::activate("fs.read");
  EXPECT_TRUE(failpoint::poll("fs.read"));
  failpoint::deactivate("fs.read");
  EXPECT_FALSE(failpoint::poll("fs.read"));
  EXPECT_EQ(failpoint::fired("fs.read"), 1u);  // history survives deactivation
}

TEST_F(FailpointFixture, DisarmClearsActivationsAndHistory) {
  failpoint::arm();
  failpoint::activate("fs.read");
  EXPECT_TRUE(failpoint::poll("fs.read"));
  failpoint::disarm();
  EXPECT_EQ(failpoint::fired("fs.read"), 0u);
  failpoint::arm();
  EXPECT_FALSE(failpoint::poll("fs.read"));  // activation did not survive
}

TEST_F(FailpointFixture, UnknownSitesAreAcceptedButInert) {
  failpoint::arm();
  failpoint::activate("no.such.site");
  EXPECT_EQ(failpoint::fired("no.such.site"), 0u);
}

TEST_F(FailpointFixture, CatalogListsTheCompiledInSites) {
  std::vector<std::string> sites = failpoint::catalog();
  EXPECT_GE(sites.size(), 10u);
  EXPECT_TRUE(std::is_sorted(sites.begin(), sites.end()));
  for (const char* expected : {"cache.fragment.publish", "cache.publish.rename",
                               "cache.snapshot.publish", "dist.dispatch", "dist.worker.crash",
                               "dist.worker.hang", "fs.read", "graph.deserialize", "jar.decode",
                               "pool.task"}) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), expected), sites.end()) << expected;
  }
}

// --- deterministic retry backoffs ------------------------------------------
//
// Both retry loops (the cache's atomic-publish rename and the dist
// coordinator's shard redispatch) back off with exponential delays whose
// jitter is seeded from stable inputs, never the wall clock — so a chaos
// run replays with identical sleeps and a test can assert exact values.

TEST(PublishBackoff, IsDeterministicPerPathAndAttempt) {
  for (int attempt : {1, 2, 3}) {
    EXPECT_EQ(cache::publish_backoff("/tmp/a.tsnp", attempt),
              cache::publish_backoff("/tmp/a.tsnp", attempt));
  }
}

TEST(PublishBackoff, BaseDoublesPerAttemptWithBoundedJitter) {
  auto first = cache::publish_backoff("/tmp/a.tsnp", 1);
  auto second = cache::publish_backoff("/tmp/a.tsnp", 2);
  EXPECT_GE(first, std::chrono::microseconds(1000));
  EXPECT_LT(first, std::chrono::microseconds(1500));
  EXPECT_GE(second, std::chrono::microseconds(2000));
  EXPECT_LT(second, std::chrono::microseconds(2500));
  EXPECT_GT(second, first);
  // The exponent clamp keeps pathological attempt numbers finite.
  EXPECT_GT(cache::publish_backoff("/tmp/a.tsnp", 99).count(), 0);
}

TEST(PublishBackoff, ConcurrentRunsOnDifferentEntriesDecorrelate) {
  // Seeded from the target path: two processes retrying different cache
  // entries do not march in lockstep (equal jitter would need an fnv1a
  // collision, and these two differ).
  EXPECT_NE(cache::publish_backoff("/tmp/a.tsnp", 1), cache::publish_backoff("/tmp/b.tsnp", 1));
}

TEST(RetryBackoff, IsDeterministicAcrossCalls) {
  dist::DistOptions options;
  for (int attempt : {1, 2, 3}) {
    EXPECT_EQ(dist::retry_backoff(options, 4, attempt), dist::retry_backoff(options, 4, attempt));
  }
  dist::DistOptions reseeded;
  reseeded.backoff_seed = options.backoff_seed + 1;
  EXPECT_NE(dist::retry_backoff(reseeded, 4, 1), dist::retry_backoff(options, 4, 1));
}

TEST(Deadline, DefaultIsUnlimitedAndNeverExpires) {
  Deadline d;
  EXPECT_TRUE(d.unlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_FALSE(d.remaining().has_value());
}

TEST(Deadline, ZeroBudgetIsAlreadyExpired) {
  Deadline d = Deadline::after(0ms);
  EXPECT_FALSE(d.unlimited());
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining().value(), 0ms);
}

TEST(Deadline, GenerousBudgetHasNotExpired) {
  Deadline d = Deadline::after(1h);
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining().value(), 59min);
}

TEST(Deadline, CancelTokenReadsAsExpired) {
  CancelToken token;
  Deadline d = Deadline::after(1h);
  d.bind(&token);
  EXPECT_FALSE(d.expired());
  token.cancel();
  EXPECT_TRUE(d.expired());
  // A bound but unexpired deadline is not "unlimited": it can fire.
  Deadline bound_only;
  bound_only.bind(&token);
  EXPECT_FALSE(bound_only.unlimited());
  EXPECT_TRUE(bound_only.expired());
}

TEST(Deadline, TightenedKeepsTheEarlierBound) {
  Deadline loose = Deadline::after(1h);
  Deadline tight = Deadline::after(0ms);
  EXPECT_TRUE(loose.tightened(tight).expired());
  EXPECT_TRUE(tight.tightened(loose).expired());
  EXPECT_FALSE(loose.tightened(Deadline::never()).expired());
  EXPECT_TRUE(Deadline::never().tightened(tight).expired());
}

TEST(ParseDurationMs, AcceptsEveryUnit) {
  EXPECT_EQ(parse_duration_ms("250ms").value(), 250);
  EXPECT_EQ(parse_duration_ms("30s").value(), 30'000);
  EXPECT_EQ(parse_duration_ms("2m").value(), 120'000);
  EXPECT_EQ(parse_duration_ms("1h").value(), 3'600'000);
  EXPECT_EQ(parse_duration_ms("0ms").value(), 0);
}

TEST(ParseDurationMs, RejectsMalformedInput) {
  EXPECT_FALSE(parse_duration_ms("").ok());
  EXPECT_FALSE(parse_duration_ms("10").ok());     // unit is mandatory
  EXPECT_FALSE(parse_duration_ms("ms").ok());     // digits are mandatory
  EXPECT_FALSE(parse_duration_ms("-5s").ok());
  EXPECT_FALSE(parse_duration_ms("1.5s").ok());
  EXPECT_FALSE(parse_duration_ms("bogus").ok());
  EXPECT_FALSE(parse_duration_ms("10 s").ok());
  EXPECT_FALSE(parse_duration_ms("99999999999999999999h").ok());  // overflow
}

}  // namespace
}  // namespace tabby::util
