// The session-oriented engine API (pipeline::Engine / Analysis /
// ExecContext): resident LRU semantics, admission control, degradation
// reporting, and — the acceptance bar — concurrent multi-tenant sessions
// whose find/query results are byte-identical to the one-shot CLI at any
// jobs count, including under a tight global budget that forces eviction
// between requests.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cli/cli.hpp"
#include "corpus/components.hpp"
#include "jar/archive.hpp"
#include "pipeline/engine.hpp"

namespace tabby {
namespace {

namespace fs = std::filesystem;

struct CliRun {
  int code = 0;
  std::string out;
  std::string err;
};

CliRun run_cli_capture(std::vector<std::string> args) {
  std::ostringstream out, err;
  CliRun result;
  result.code = cli::run_cli(args, out, err);
  result.out = out.str();
  result.err = err.str();
  return result;
}

/// The signature lines (one per chain node) of a find report, in order —
/// the timing-insensitive projection of `tabby find` output.
std::string chain_lines(const std::string& out) {
  std::istringstream lines(out);
  std::string line, chains;
  while (std::getline(lines, line)) {
    if (line.find('#') == std::string::npos) continue;
    chains += line;
    chains += '\n';
  }
  return chains;
}

/// Renders a FindResult's chains the way the CLI does (minus the timing
/// header), for comparison against captured CLI output.
std::string chain_lines(const pipeline::FindResult& result) {
  std::string text;
  for (const finder::GadgetChain& chain : result.report.chains) {
    text += chain.to_string();
    text += "\n";
  }
  return chain_lines(text);
}

class EngineFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / ("tabby_engine_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
    jar_a_ = (dir_ / "beanshell.tjar").string();
    jar_b_ = (dir_ / "rome.tjar").string();
    ASSERT_TRUE(jar::write_archive_file(corpus::build_component("BeanShell1").jar, jar_a_).ok());
    ASSERT_TRUE(jar::write_archive_file(corpus::build_component("Rome").jar, jar_b_).ok());
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
  std::string jar_a_;
  std::string jar_b_;
};

TEST_F(EngineFixture, SecondOpenIsAResidentHitReturningTheSameAnalysis) {
  pipeline::Engine engine;
  pipeline::ExecContext ctx;
  auto first = engine.open({jar_a_}, ctx);
  ASSERT_TRUE(first.ok());
  auto second = engine.open({jar_a_}, ctx);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().get(), second.value().get());

  pipeline::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.opens, 2u);
  EXPECT_EQ(stats.resident_hits, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  ASSERT_EQ(stats.entries.size(), 1u);
  EXPECT_EQ(stats.entries[0].fingerprint, first.value()->fingerprint());
  EXPECT_EQ(stats.entries[0].hits, 1u);
}

TEST_F(EngineFixture, DistinctClasspathsGetDistinctResidentEntries) {
  pipeline::Engine engine;
  pipeline::ExecContext ctx;
  auto a = engine.open({jar_a_}, ctx);
  auto b = engine.open({jar_b_}, ctx);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value()->fingerprint(), b.value()->fingerprint());
  EXPECT_EQ(engine.stats().entries.size(), 2u);
  // MRU order: b was opened last.
  EXPECT_EQ(engine.stats().entries[0].fingerprint, b.value()->fingerprint());
}

TEST_F(EngineFixture, FindMatchesOneShotCliByteForByte) {
  CliRun cli = run_cli_capture({"find", jar_a_});
  ASSERT_EQ(cli.code, 0) << cli.err;

  pipeline::Engine engine;
  pipeline::ExecContext ctx;
  auto analysis = engine.open({jar_a_}, ctx);
  ASSERT_TRUE(analysis.ok());
  pipeline::FindResult found = analysis.value()->find(ctx);
  EXPECT_TRUE(found.used_frozen);  // the engine's serving default
  EXPECT_EQ(chain_lines(found), chain_lines(cli.out));
}

TEST_F(EngineFixture, QueryMatchesOneShotCliByteForByte) {
  const std::string query = "MATCH (m:Method) WHERE m.IS_SINK = true RETURN m.NAME, m.SIGNATURE";
  CliRun cli = run_cli_capture({"query", jar_a_, query});
  ASSERT_EQ(cli.code, 0) << cli.err;

  pipeline::Engine engine;
  pipeline::ExecContext ctx;
  auto analysis = engine.open({jar_a_}, ctx);
  ASSERT_TRUE(analysis.ok());
  auto result = analysis.value()->query(query, ctx);
  ASSERT_TRUE(result.ok());
  // The CLI's whole stdout for this command is the rendered rows + trailer.
  EXPECT_EQ(analysis.value()->render(result.value()), cli.out);
}

TEST_F(EngineFixture, ResultsAreIdenticalAtAnyJobsCount) {
  pipeline::ExecContext ctx;
  std::string serial_chains, serial_rows;
  pipeline::EngineOptions serial_options;
  serial_options.jobs = 1;
  pipeline::EngineOptions parallel_options;
  parallel_options.jobs = 4;
  {
    pipeline::Engine engine(serial_options);
    auto analysis = engine.open({jar_a_}, ctx);
    ASSERT_TRUE(analysis.ok());
    serial_chains = chain_lines(analysis.value()->find(ctx));
    auto rows = analysis.value()->query("MATCH (m:Method {IS_SINK: true}) RETURN m.NAME", ctx);
    ASSERT_TRUE(rows.ok());
    serial_rows = analysis.value()->render(rows.value());
  }
  pipeline::Engine engine(parallel_options);
  auto analysis = engine.open({jar_a_}, ctx);
  ASSERT_TRUE(analysis.ok());
  EXPECT_EQ(chain_lines(analysis.value()->find(ctx)), serial_chains);
  auto rows = analysis.value()->query("MATCH (m:Method {IS_SINK: true}) RETURN m.NAME", ctx);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(engine.stats().resident_hits, 0u);
  EXPECT_EQ(analysis.value()->render(rows.value()), serial_rows);
}

// The ISSUE's concurrency acceptance: two tenants issue interleaved
// find/query requests against different classpaths through ONE engine (a
// shared pool), and every result is byte-identical to the one-shot CLI.
TEST_F(EngineFixture, ConcurrentTenantsMatchTheOneShotCli) {
  CliRun cli_a = run_cli_capture({"find", jar_a_, "--jobs", "2"});
  CliRun cli_b = run_cli_capture({"find", jar_b_, "--jobs", "2"});
  const std::string query = "MATCH (m:Method)-[:CALL]->(s:Method {IS_SINK: true}) RETURN m.NAME";
  CliRun cli_qa = run_cli_capture({"query", jar_a_, query, "--jobs", "2"});
  CliRun cli_qb = run_cli_capture({"query", jar_b_, query, "--jobs", "2"});
  ASSERT_EQ(cli_a.code, 0);
  ASSERT_EQ(cli_b.code, 0);
  ASSERT_EQ(cli_qa.code, 0);
  ASSERT_EQ(cli_qb.code, 0);

  pipeline::EngineOptions shared_options;
  shared_options.jobs = 2;
  pipeline::Engine engine(shared_options);
  auto tenant = [&](const std::string& jar, std::string& chains_out, std::string& rows_out) {
    pipeline::ExecContext ctx;
    for (int round = 0; round < 3; ++round) {
      auto analysis = engine.open({jar}, ctx);
      ASSERT_TRUE(analysis.ok());
      chains_out = chain_lines(analysis.value()->find(ctx));
      auto rows = analysis.value()->query(query, ctx);
      ASSERT_TRUE(rows.ok());
      rows_out = analysis.value()->render(rows.value());
    }
  };
  std::string chains_a, rows_a, chains_b, rows_b;
  std::thread ta([&] { tenant(jar_a_, chains_a, rows_a); });
  std::thread tb([&] { tenant(jar_b_, chains_b, rows_b); });
  ta.join();
  tb.join();

  EXPECT_EQ(chains_a, chain_lines(cli_a.out));
  EXPECT_EQ(chains_b, chain_lines(cli_b.out));
  EXPECT_EQ(rows_a, cli_qa.out);
  EXPECT_EQ(rows_b, cli_qb.out);
  // Round 2 and 3 of each tenant were resident hits.
  EXPECT_EQ(engine.stats().resident_hits, 4u);
}

TEST_F(EngineFixture, TightBudgetEvictsLruAndResultsStayByteIdentical) {
  CliRun cli_a = run_cli_capture({"find", jar_a_});
  CliRun cli_b = run_cli_capture({"find", jar_b_});

  // Big enough for either analysis alone, too small for both: every switch
  // of tenant evicts the other's idle analysis.
  std::vector<std::pair<std::uint64_t, std::size_t>> evicted;
  pipeline::EngineOptions options;
  options.memory_budget_bytes = 900 * 1024;
  options.on_evict = [&](std::uint64_t fingerprint, std::size_t bytes) {
    evicted.emplace_back(fingerprint, bytes);
  };
  pipeline::Engine engine(options);
  pipeline::ExecContext ctx;
  pipeline::OpenOptions admit;
  admit.require_admission = true;

  for (int round = 0; round < 2; ++round) {
    auto a = engine.open({jar_a_}, ctx, admit);
    ASSERT_TRUE(a.ok()) << a.error().message;
    EXPECT_EQ(chain_lines(a.value()->find(ctx)), chain_lines(cli_a.out));
    a = util::Result<pipeline::AnalysisPtr>(nullptr);  // drop the handle: idle, evictable
    auto b = engine.open({jar_b_}, ctx, admit);
    ASSERT_TRUE(b.ok()) << b.error().message;
    EXPECT_EQ(chain_lines(b.value()->find(ctx)), chain_lines(cli_b.out));
  }

  pipeline::EngineStats stats = engine.stats();
  EXPECT_GE(stats.evictions, 3u);  // a->b, b->a, a->b at minimum
  EXPECT_EQ(stats.evictions, evicted.size());
  EXPECT_LE(stats.resident_bytes, options.memory_budget_bytes);
  for (const auto& [fingerprint, bytes] : evicted) {
    EXPECT_NE(fingerprint, 0u);
    EXPECT_GT(bytes, 0u);
  }
}

TEST_F(EngineFixture, OverCapacityOpenFailsStructurally) {
  pipeline::EngineOptions options;
  options.memory_budget_bytes = 16 * 1024;  // nothing real fits
  pipeline::Engine engine(options);
  pipeline::ExecContext ctx;
  pipeline::OpenOptions admit;
  admit.require_admission = true;
  auto result = engine.open({jar_a_}, ctx, admit);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(pipeline::is_over_capacity(result.error()));
  EXPECT_EQ(engine.stats().over_capacity, 1u);
  EXPECT_EQ(engine.stats().entries.size(), 0u);
}

TEST_F(EngineFixture, WithoutAdmissionControlTheOpenSucceedsNonResident) {
  pipeline::EngineOptions options;
  options.memory_budget_bytes = 16 * 1024;
  pipeline::Engine engine(options);
  pipeline::ExecContext ctx;
  auto result = engine.open({jar_a_}, ctx);  // one-shot CLI mode
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value()->find(ctx).report.chains.size(), 0u);
  // Usable, but the engine retains nothing it cannot afford.
  EXPECT_EQ(engine.stats().entries.size(), 0u);
  EXPECT_EQ(engine.stats().over_capacity, 0u);
}

TEST_F(EngineFixture, MaxResidentCapsTheLruByCount) {
  pipeline::EngineOptions options;
  options.max_resident = 1;
  pipeline::Engine engine(options);
  pipeline::ExecContext ctx;
  auto a = engine.open({jar_a_}, ctx);
  ASSERT_TRUE(a.ok());
  a = util::Result<pipeline::AnalysisPtr>(nullptr);  // idle
  auto b = engine.open({jar_b_}, ctx);
  ASSERT_TRUE(b.ok());
  pipeline::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.entries.size(), 1u);
  EXPECT_EQ(stats.entries[0].fingerprint, b.value()->fingerprint());
  EXPECT_EQ(stats.evictions, 1u);
}

TEST_F(EngineFixture, ExplicitEvictionDropsTheEntry) {
  pipeline::Engine engine;
  pipeline::ExecContext ctx;
  auto a = engine.open({jar_a_}, ctx);
  ASSERT_TRUE(a.ok());
  std::uint64_t fingerprint = a.value()->fingerprint();
  EXPECT_FALSE(engine.evict(fingerprint ^ 1));  // unknown fingerprint
  EXPECT_TRUE(engine.evict(fingerprint));
  EXPECT_EQ(engine.stats().entries.size(), 0u);
  // The evicted handle stays valid for the holder.
  EXPECT_GT(a.value()->find(ctx).report.chains.size(), 0u);
  // Re-open rebuilds (a fresh Analysis, not the evicted pointer).
  auto again = engine.open({jar_a_}, ctx);
  ASSERT_TRUE(again.ok());
  EXPECT_NE(again.value().get(), a.value().get());
  EXPECT_EQ(engine.stats().resident_hits, 0u);
}

// Satellite: Analysis::find fills DegradationReport::partial_sinks and
// frontier_pruned for EVERY entry point — callers no longer hand-roll it.
TEST_F(EngineFixture, FindPopulatesDegradationPartials) {
  pipeline::Engine engine;
  pipeline::ExecContext ctx;
  auto analysis = engine.open({jar_a_}, ctx);
  ASSERT_TRUE(analysis.ok());

  pipeline::ExecContext starved = ctx;
  starved.finder_budget = std::chrono::milliseconds{0};  // expire at finder start
  pipeline::FindResult found = analysis.value()->find(starved);
  ASSERT_TRUE(found.report.partial());
  EXPECT_EQ(found.degradation.partial_sinks, found.report.partial_sinks.size());
  EXPECT_EQ(found.degradation.frontier_pruned, found.report.frontier_pruned);
  EXPECT_TRUE(found.degradation.degraded());

  // A clean search reports a clean degradation view.
  pipeline::FindResult clean = analysis.value()->find(ctx);
  EXPECT_FALSE(clean.report.partial());
  EXPECT_EQ(clean.degradation.partial_sinks, 0u);
  EXPECT_FALSE(clean.degradation.degraded());
}

TEST_F(EngineFixture, InMemoryOpenIsNonResident) {
  pipeline::Engine engine;
  pipeline::ExecContext ctx;
  corpus::Component component = corpus::build_component("BeanShell1");
  pipeline::AnalysisPtr analysis = engine.open(component.link(), ctx);
  ASSERT_NE(analysis, nullptr);
  EXPECT_EQ(analysis->fingerprint(), 0u);
  EXPECT_EQ(engine.stats().entries.size(), 0u);
  EXPECT_GT(analysis->find(ctx).report.chains.size(), 0u);
}

TEST_F(EngineFixture, CacheDirectoryGivesWarmSecondEngine) {
  std::string cache = (dir_ / "cache").string();
  pipeline::ExecContext ctx;
  pipeline::EngineOptions options;
  options.cache_dir = cache;
  {
    pipeline::Engine cold(options);
    auto analysis = cold.open({jar_a_}, ctx);
    ASSERT_TRUE(analysis.ok());
    EXPECT_FALSE(analysis.value()->outcome().warm);
  }
  pipeline::Engine warm(options);
  auto analysis = warm.open({jar_a_}, ctx);
  ASSERT_TRUE(analysis.ok());
  EXPECT_TRUE(analysis.value()->outcome().warm);
}

}  // namespace
}  // namespace tabby
