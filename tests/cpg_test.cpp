// Tests for CPG construction (§III-B): ORG shape, HAS/EXTEND/INTERFACE
// edges, CALL edges with Polluted_Position, pruning (MCG -> PCG), ALIAS
// edges (Formula 1), sink/source annotation and phantom handling — checked
// against the paper's URLDNS example (Figure 4).
#include <gtest/gtest.h>

#include "analysis/domain.hpp"
#include <filesystem>
#include <fstream>

#include "cpg/builder.hpp"
#include "cpg/export.hpp"
#include "cpg/schema.hpp"
#include "cpg/sinks.hpp"
#include "fixtures.hpp"

namespace tabby::cpg {
namespace {

using graph::NodeId;
using graph::Value;

NodeId method_node(const graph::GraphDb& db, const std::string& owner, const std::string& name,
                   int nargs) {
  auto hits = db.find_nodes(std::string(kMethodLabel), std::string(kPropSignature),
                            Value{method_signature(owner, name, nargs)});
  EXPECT_EQ(hits.size(), 1u) << owner << "#" << name << "/" << nargs;
  return hits.empty() ? graph::kNoNode : hits[0];
}

NodeId class_node(const graph::GraphDb& db, const std::string& name) {
  auto hits = db.find_nodes(std::string(kClassLabel), std::string(kPropName), Value{name});
  EXPECT_EQ(hits.size(), 1u) << name;
  return hits.empty() ? graph::kNoNode : hits[0];
}

TEST(SinkRegistry, DefaultsCoverTableVII) {
  SinkRegistry r = SinkRegistry::defaults();
  EXPECT_EQ(r.size(), 38u);  // the paper summarises 38 sink methods

  const SinkSpec* exec = r.match("java.lang.Runtime", "exec");
  ASSERT_NE(exec, nullptr);
  EXPECT_EQ(exec->type, "EXEC");
  EXPECT_EQ(exec->trigger, (std::vector<int>{1}));

  const SinkSpec* invoke = r.match("java.lang.reflect.Method", "invoke");
  ASSERT_NE(invoke, nullptr);
  EXPECT_EQ(invoke->trigger, (std::vector<int>{0, 1}));

  const SinkSpec* lookup = r.match("javax.naming.Context", "lookup");
  ASSERT_NE(lookup, nullptr);
  EXPECT_EQ(lookup->type, "JNDI");

  EXPECT_EQ(r.match("java.lang.Runtime", "harmless"), nullptr);
  EXPECT_EQ(r.match("demo.Nothing", "exec"), nullptr);
}

TEST(SourceRegistry, RecognisesDeserializationEntryPoints) {
  SourceRegistry r = SourceRegistry::defaults();
  EXPECT_TRUE(r.is_source_name("readObject"));
  EXPECT_TRUE(r.is_source_name("readExternal"));
  EXPECT_TRUE(r.is_source_name("readResolve"));
  EXPECT_TRUE(r.is_source_name("finalize"));
  EXPECT_FALSE(r.is_source_name("toString"));
  EXPECT_FALSE(r.is_source_name("main"));
}

class UrldnsCpg : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    program_ = new jir::Program(testing::urldns_program());
    cpg_ = new Cpg(build_cpg(*program_));
  }
  static void TearDownTestSuite() {
    delete cpg_;
    delete program_;
    cpg_ = nullptr;
    program_ = nullptr;
  }

  static jir::Program* program_;
  static Cpg* cpg_;
};

jir::Program* UrldnsCpg::program_ = nullptr;
Cpg* UrldnsCpg::cpg_ = nullptr;

TEST_F(UrldnsCpg, OrgHasClassAndMethodNodes) {
  const auto& db = cpg_->db;
  EXPECT_GT(cpg_->stats.class_nodes, 0u);
  EXPECT_GT(cpg_->stats.method_nodes, 0u);

  NodeId hashmap = class_node(db, "java.util.HashMap");
  EXPECT_TRUE(db.node(hashmap).prop_bool(std::string(kPropSerializable)));
  EXPECT_FALSE(db.node(hashmap).prop_bool(std::string(kPropInterface)));

  // HAS edges connect the class to each of its methods.
  auto has_edges = db.out_edges_typed(hashmap, kHasEdge);
  EXPECT_EQ(has_edges.size(), 2u);  // readObject, hash
}

TEST_F(UrldnsCpg, ExtendAndInterfaceEdges) {
  const auto& db = cpg_->db;
  NodeId hashmap = class_node(db, "java.util.HashMap");
  NodeId object = class_node(db, "java.lang.Object");
  NodeId serializable = class_node(db, "java.io.Serializable");
  EXPECT_TRUE(db.find_edge(hashmap, object, kExtendEdge).has_value());
  EXPECT_TRUE(db.find_edge(hashmap, serializable, kInterfaceEdge).has_value());
  EXPECT_FALSE(db.find_edge(object, hashmap, kExtendEdge).has_value());
}

TEST_F(UrldnsCpg, CallEdgesCarryPollutedPosition) {
  const auto& db = cpg_->db;
  NodeId read_object = method_node(db, "java.util.HashMap", "readObject", 1);
  NodeId hash = method_node(db, "java.util.HashMap", "hash", 1);
  auto call = db.find_edge(read_object, hash, kCallEdge);
  ASSERT_TRUE(call.has_value());
  const auto* pp = std::get_if<std::vector<std::int64_t>>(
      db.edge(*call).prop(std::string(kPropPollutedPosition)));
  ASSERT_NE(pp, nullptr);
  // Receiver is @this (0); the argument is this.key (weight 0).
  EXPECT_EQ(*pp, (std::vector<std::int64_t>{0, 0}));
}

TEST_F(UrldnsCpg, AliasEdgesLinkOverridesToObjectHashCode) {
  const auto& db = cpg_->db;
  NodeId url_hash = method_node(db, "java.net.URL", "hashCode", 0);
  NodeId obj_hash = method_node(db, "java.lang.Object", "hashCode", 0);
  NodeId enum_hash = method_node(db, "java.util.EnumMap", "hashCode", 0);
  EXPECT_TRUE(db.find_edge(url_hash, obj_hash, kAliasEdge).has_value());
  EXPECT_TRUE(db.find_edge(enum_hash, obj_hash, kAliasEdge).has_value());
  // ALIAS edges are directional: override -> overridden only.
  EXPECT_FALSE(db.find_edge(obj_hash, url_hash, kAliasEdge).has_value());
}

TEST_F(UrldnsCpg, SinkAndSourceAnnotation) {
  const auto& db = cpg_->db;
  NodeId get_by_name = method_node(db, "java.net.InetAddress", "getByName", 1);
  const graph::Node& sink = db.node(get_by_name);
  EXPECT_TRUE(sink.prop_bool(std::string(kPropIsSink)));
  EXPECT_EQ(sink.prop_string(std::string(kPropSinkType)), "SSRF");
  EXPECT_TRUE(sink.prop_bool(std::string(kPropPhantom)));  // InetAddress is not in the program
  const auto* tc =
      std::get_if<std::vector<std::int64_t>>(sink.prop(std::string(kPropTriggerCondition)));
  ASSERT_NE(tc, nullptr);
  EXPECT_EQ(*tc, (std::vector<std::int64_t>{1}));

  NodeId read_object = method_node(db, "java.util.HashMap", "readObject", 1);
  EXPECT_TRUE(db.node(read_object).prop_bool(std::string(kPropIsSource)));
  // hash() is not a source; URLStreamHandler is not serializable.
  NodeId hash = method_node(db, "java.util.HashMap", "hash", 1);
  EXPECT_FALSE(db.node(hash).prop_bool(std::string(kPropIsSource)));
  EXPECT_EQ(cpg_->stats.source_methods, 1u);
}

TEST_F(UrldnsCpg, ActionStoredOnMethodNodes) {
  const auto& db = cpg_->db;
  NodeId gha = method_node(db, "java.net.URLStreamHandler", "getHostAddress", 1);
  const auto* action_strings =
      std::get_if<std::vector<std::string>>(db.node(gha).prop(std::string(kPropAction)));
  ASSERT_NE(action_strings, nullptr);
  analysis::Action action = analysis::Action::from_strings(*action_strings);
  EXPECT_EQ(action.entries.at("return"), analysis::Origin::unknown());  // getByName is phantom
}

TEST_F(UrldnsCpg, StatsAreConsistent) {
  graph::GraphStats gs = cpg_->db.stats();
  EXPECT_EQ(cpg_->stats.class_nodes, gs.nodes_by_label.at(std::string(kClassLabel)));
  EXPECT_EQ(cpg_->stats.method_nodes, gs.nodes_by_label.at(std::string(kMethodLabel)));
  EXPECT_EQ(cpg_->stats.relationship_edges, gs.edge_count);
  EXPECT_GT(cpg_->stats.build_seconds, 0.0);
}

TEST(CpgOptionsTest, PruningRemovesUncontrollableCalls) {
  jir::ProgramBuilder pb;
  pb.with_core_classes();
  auto cls = pb.add_class("t.C");
  cls.method("callee").set_static().param("java.lang.String").returns("void").ret();
  cls.method("m")
      .set_static()
      .returns("void")
      .const_str("k", "fixed")
      .invoke_static("", "t.C", "callee", {"k"})
      .ret();
  jir::Program p = pb.build();

  Cpg pruned = build_cpg(p);
  EXPECT_EQ(pruned.stats.call_edges, 0u);
  EXPECT_EQ(pruned.stats.pruned_call_sites, 1u);

  CpgOptions keep;
  keep.prune_uncontrollable_calls = false;
  Cpg raw = build_cpg(p, keep);
  EXPECT_EQ(raw.stats.call_edges, 1u);
  EXPECT_EQ(raw.stats.pruned_call_sites, 0u);
}

TEST(CpgOptionsTest, AliasEdgesCanBeDisabled) {
  jir::Program p = testing::urldns_program();
  CpgOptions options;
  options.build_alias_edges = false;
  Cpg cpg = build_cpg(p, options);
  EXPECT_EQ(cpg.stats.alias_edges, 0u);
}

TEST(CpgOptionsTest, JarNameRecordedOnClassNodes) {
  jir::ProgramBuilder pb;
  pb.add_class("t.C");
  jir::Program p = pb.build();
  CpgOptions options;
  options.jar_name = "demo.jar";
  Cpg cpg = build_cpg(p, options);
  auto hits = cpg.db.find_nodes(std::string(kClassLabel), std::string(kPropName),
                                Value{std::string("t.C")});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(cpg.db.node(hits[0]).prop_string(std::string(kPropJar)), "demo.jar");
}

TEST(CpgOptionsTest, RepeatedCallsMergeIntoOneEdge) {
  jir::ProgramBuilder pb;
  pb.with_core_classes();
  auto cls = pb.add_class("t.C");
  cls.method("callee").set_static().param("java.lang.Object").returns("void").ret();
  cls.method("m")
      .set_static()
      .param("java.lang.Object")
      .returns("void")
      .const_null("k")
      .invoke_static("", "t.C", "callee", {"k"})     // PP [∞,∞] — alone it would be pruned
      .invoke_static("", "t.C", "callee", {"@p1"})   // PP [∞,1]
      .ret();
  jir::Program p = pb.build();
  Cpg cpg = build_cpg(p);
  // Only the controllable call survives pruning; one edge with PP [∞,1].
  EXPECT_EQ(cpg.stats.call_edges, 1u);
  bool found = false;
  cpg.db.for_each_edge([&](const graph::Edge& e) {
    if (e.type != kCallEdge) return;
    const auto* pp =
        std::get_if<std::vector<std::int64_t>>(e.prop(std::string(kPropPollutedPosition)));
    ASSERT_NE(pp, nullptr);
    EXPECT_EQ((*pp)[1], 1);
    found = true;
  });
  EXPECT_TRUE(found);
}

TEST(CpgOptionsTest, EvilObjectGraphShape) {
  jir::Program p = testing::evil_object_program();
  Cpg cpg = build_cpg(p);
  const auto& db = cpg.db;

  // EvilObjectB.toString aliases Object.toString.
  NodeId b_tostring = method_node(db, "demo.EvilObjectB", "toString", 0);
  NodeId obj_tostring = method_node(db, "java.lang.Object", "toString", 0);
  EXPECT_TRUE(db.find_edge(b_tostring, obj_tostring, kAliasEdge).has_value());

  // The exec call edge exists with a controllable argument.
  NodeId exec = method_node(db, "java.lang.Runtime", "exec", 1);
  EXPECT_TRUE(db.node(exec).prop_bool(std::string(kPropIsSink)));
  auto in_calls = db.in_edges_typed(exec, kCallEdge);
  ASSERT_EQ(in_calls.size(), 1u);
  const auto* pp = std::get_if<std::vector<std::int64_t>>(
      db.edge(in_calls[0]).prop(std::string(kPropPollutedPosition)));
  ASSERT_NE(pp, nullptr);
  EXPECT_EQ((*pp)[1], 0);  // cmd comes from this.val2
}


// --- CSV export (neo4j-admin bulk import layout) -------------------------------

TEST(CsvExport, WritesThreeFilesWithCorrectCounts) {
  jir::Program p = testing::urldns_program();
  Cpg cpg = build_cpg(p);
  auto dir = std::filesystem::temp_directory_path() / "tabby_csv_test";
  std::filesystem::remove_all(dir);

  auto stats = export_csv(cpg.db, dir);
  ASSERT_TRUE(stats.ok()) << stats.error().to_string();
  EXPECT_EQ(stats.value().class_rows, cpg.stats.class_nodes);
  EXPECT_EQ(stats.value().method_rows, cpg.stats.method_nodes);
  EXPECT_EQ(stats.value().relationship_rows, cpg.stats.relationship_edges);

  // Line counts = rows + header.
  auto count_lines = [](const std::filesystem::path& file) {
    std::ifstream in(file);
    std::string line;
    std::size_t n = 0;
    while (std::getline(in, line)) ++n;
    return n;
  };
  EXPECT_EQ(count_lines(dir / "CLASSES.csv"), cpg.stats.class_nodes + 1);
  EXPECT_EQ(count_lines(dir / "METHODS.csv"), cpg.stats.method_nodes + 1);
  EXPECT_EQ(count_lines(dir / "RELATIONSHIPS.csv"), cpg.stats.relationship_edges + 1);

  // Spot check: the sink row carries its type and trigger condition.
  std::ifstream methods(dir / "METHODS.csv");
  std::string line;
  bool sink_row_found = false;
  while (std::getline(methods, line)) {
    if (line.find("java.net.InetAddress#getByName/1") != std::string::npos) {
      EXPECT_NE(line.find("SSRF"), std::string::npos);
      EXPECT_NE(line.find("[1]"), std::string::npos);
      sink_row_found = true;
    }
  }
  EXPECT_TRUE(sink_row_found);
  std::filesystem::remove_all(dir);
}

TEST(CsvExport, BadDirectoryFails) {
  jir::Program p = testing::urldns_program();
  Cpg cpg = build_cpg(p);
  auto result = export_csv(cpg.db, "/proc/definitely/not/writable");
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace tabby::cpg
